package graph

// Crash recovery: opening a durable store from its data directory.
// See wal.go for the log format and the invariants recovery relies on.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Recover opens (creating if absent) the durable store rooted at dir:
// the latest checkpoint snapshot is loaded, the write-ahead log is
// replayed over it, and a torn tail — a record cut short by a crash —
// is detected by its length/checksum and truncated away. The returned
// store appends every further commit to the log; Close the WAL when
// done with it.
func Recover(dir string, opts Durability) (*Store, *WAL, error) {
	return recoverFS(dir, opts, osFS{})
}

// recoverFS is Recover with the mutating filesystem operations behind
// fs, so the fault-injection tests can kill recovery's own writes too.
// Read paths use the real filesystem: the fault model is a dying
// writer, and recovery reads what that writer left behind.
func recoverFS(dir string, opts Durability, fs walFS) (*Store, *WAL, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, fmt.Errorf("graph: open data dir: %w", err)
	}
	// Sweep checkpoint temp files a killed process left behind; the
	// rename never happened, so they are garbage.
	if stale, err := filepath.Glob(filepath.Join(dir, walTempPrefix+"*")); err == nil {
		for _, p := range stale {
			_ = fs.Remove(p)
		}
	}

	g := New()
	var ckptEpoch int64
	snapPath := filepath.Join(dir, snapshotFileName)
	if f, err := os.Open(snapPath); err == nil {
		g, ckptEpoch, err = readJSONState(bufio.NewReaderSize(f, 64<<10))
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("graph: recover %s: %w", snapshotFileName, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("graph: recover: %w", err)
	}

	size, lastEpoch, replayed, err := replayWAL(filepath.Join(dir, walFileName), g, ckptEpoch)
	if err != nil {
		return nil, nil, err
	}
	epoch := ckptEpoch
	if lastEpoch > epoch {
		epoch = lastEpoch
	}

	w, err := openWAL(dir, opts, fs, size, lastEpoch, ckptEpoch, replayed)
	if err != nil {
		return nil, nil, err
	}
	st := NewStore(g)
	st.epoch = epoch
	st.cur.epoch = epoch
	st.wal = w
	return st, w, nil
}

// replayWAL scans the log at path, applying every intact record with
// epoch > ckptEpoch onto g. It returns the byte length of the valid
// prefix (having truncated any torn tail away), the epoch of the last
// record seen, and how many records were applied. Framing damage at
// the tail — a short or checksum-failing record — is the expected
// trace of a crash and is healed by truncation; damage that passes the
// checksum (a record that will not decode or apply) is real corruption
// and fails recovery.
func replayWAL(path string, g *Graph, ckptEpoch int64) (size, lastEpoch, replayed int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, 0, nil
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("graph: recover wal: %w", err)
	}
	defer f.Close()

	truncateTo := func(n int64) (int64, int64, int64, error) {
		if err := f.Close(); err != nil {
			return 0, 0, 0, fmt.Errorf("graph: recover wal: %w", err)
		}
		if err := os.Truncate(path, n); err != nil {
			return 0, 0, 0, fmt.Errorf("graph: recover wal: truncate torn tail: %w", err)
		}
		return n, lastEpoch, replayed, nil
	}

	r := bufio.NewReaderSize(f, 256<<10)
	header := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, header); err != nil {
		// The process died while creating the log: even the header is
		// incomplete. Nothing can be in it; start over.
		return truncateTo(0)
	}
	if string(header) != walMagic {
		return 0, 0, 0, fmt.Errorf("graph: %s is not a wal file", filepath.Base(path))
	}
	valid := int64(len(walMagic))
	var frameHdr [8]byte
	for {
		if _, err := io.ReadFull(r, frameHdr[:]); err != nil {
			if err == io.EOF {
				break // clean end of log
			}
			return truncateTo(valid) // torn frame header
		}
		payloadLen := binary.LittleEndian.Uint32(frameHdr[0:4])
		if payloadLen == 0 || payloadLen > maxWALRecordBytes {
			return truncateTo(valid) // garbage length: torn tail
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return truncateTo(valid) // torn payload
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frameHdr[4:8]) {
			return truncateTo(valid) // torn or bit-rotted record
		}
		// Past the checksum: any failure from here on is corruption the
		// crash model cannot explain.
		rec, err := decodeRecord(payload)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("graph: wal corrupt at offset %d: %w", valid, err)
		}
		if rec.epoch <= lastEpoch {
			return 0, 0, 0, fmt.Errorf("graph: wal corrupt at offset %d: epoch %d after %d", valid, rec.epoch, lastEpoch)
		}
		lastEpoch = rec.epoch
		if rec.epoch > ckptEpoch {
			// Records at or below the checkpoint epoch are the residue of
			// a crash between checkpoint rename and log truncation: their
			// content is already in the snapshot.
			if err := rec.apply(g); err != nil {
				return 0, 0, 0, fmt.Errorf("graph: wal corrupt at offset %d: %w", valid, err)
			}
			replayed++
		}
		valid += 8 + int64(payloadLen)
	}
	return valid, lastEpoch, replayed, nil
}

// AtomicWriteFile writes a file via a temp file in the destination's
// directory plus a rename, so path is only ever absent or complete:
// a crash or write error mid-save cannot leave a truncated file, and
// an existing file at path survives any failed attempt untouched.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	discard := func(e error) error {
		tmp.Close()
		os.Remove(tmpName)
		return e
	}
	bw := bufio.NewWriterSize(tmp, 64<<10)
	if err := write(bw); err != nil {
		return discard(err)
	}
	if err := bw.Flush(); err != nil {
		return discard(err)
	}
	if err := tmp.Sync(); err != nil {
		return discard(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	osFS{}.SyncDir(dir)
	return nil
}
