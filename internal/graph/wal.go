package graph

// The write-ahead log: durability for the epoch store.
//
// Every commit that changes anything appends one binary record — the
// committed epoch's net Delta plus the final values it leaves behind —
// to dir/wal.log before the epoch is published. Crash recovery
// (recovery.go) replays the log over the latest checkpoint snapshot
// (dir/snapshot.json), so the recovered graph equals the committed
// prefix that reached disk.
//
// # Record format
//
// The log starts with a magic header, then length-prefixed records:
//
//	[uint32le payload length][uint32le IEEE CRC-32 of payload][payload]
//
// The payload encodes, with the varint/value codec of binval.go and in
// this order: a version byte, the epoch number, the post-commit id
// counters, then the delta sections in replay order — relationships
// deleted, nodes deleted, nodes created (labels and properties
// inline), relationships created, labels added/removed, properties
// touched (with their final value, or a removal marker), indexes
// dropped, indexes created. A Delta alone is value-blind (PropsTouched
// records keys, not values), so the appender reads final values out of
// the committing transaction's graph.
//
// A torn tail — the process died mid-append — fails the length or CRC
// check; recovery truncates the log at the last complete record. A
// record that passes its CRC but fails to decode or apply is real
// corruption and fails recovery loudly.
//
// # Checkpoints
//
// When the log exceeds Durability.CheckpointBytes (and on explicit
// Store.Checkpoint), the current graph is written as a codec snapshot
// to a temp file in the same directory, fsynced, and renamed over
// dir/snapshot.json — the rename is the atomic commit point, so a
// crash mid-checkpoint leaves the previous snapshot intact. Only after
// the rename is the log truncated and its header rewritten. A crash
// between rename and truncate double-covers some epochs; records carry
// their epoch number and recovery skips those at or below the
// snapshot's, so replay is idempotent across that window.
//
// # Failure stickiness
//
// A failed append may leave a partial record at the log's tail.
// Appending after it would put good records behind garbage where
// recovery's torn-tail truncation would drop them, so the first append
// or sync failure poisons the WAL: every later operation returns the
// same error, and the store surfaces it from Commit. The in-memory
// epoch is still published (an in-place transaction cannot be
// un-applied); the caller decides whether to keep computing on memory
// or to stop.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/value"
)

// SyncMode selects when the write-ahead log is fsynced.
type SyncMode int

// Sync modes.
const (
	// SyncAlways fsyncs the log on every commit before the epoch is
	// published: a committed transaction survives any crash. The
	// default.
	SyncAlways SyncMode = iota
	// SyncInterval lets commits return after the buffered write and
	// fsyncs in the background every Durability.SyncEvery: a crash can
	// lose at most the last interval's commits (the log still always
	// recovers to a consistent committed prefix).
	SyncInterval
	// SyncNever leaves flushing to the operating system: cheapest, and
	// a crash loses whatever the OS had not written back yet.
	SyncNever
)

// String names the sync mode ("always", "interval", "never").
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// Durability configures the write-ahead log of a durable store: when
// the log is fsynced and how large it may grow before a checkpoint
// compacts it. The zero value is the safe default: fsync on every
// commit, checkpoint every 4 MiB of log.
type Durability struct {
	// Sync selects the fsync policy (default SyncAlways).
	Sync SyncMode
	// SyncEvery is the background fsync cadence under SyncInterval
	// (default 5ms; ignored in the other modes).
	SyncEvery time.Duration
	// CheckpointBytes is the log size that triggers an automatic
	// checkpoint-and-truncate (default 4 MiB; negative disables
	// automatic checkpoints).
	CheckpointBytes int64
}

const (
	defaultSyncEvery       = 5 * time.Millisecond
	defaultCheckpointBytes = 4 << 20
)

// syncEvery resolves the configured or default background cadence.
func (d Durability) syncEvery() time.Duration {
	if d.SyncEvery > 0 {
		return d.SyncEvery
	}
	return defaultSyncEvery
}

// checkpointBytes resolves the configured or default checkpoint
// threshold; 0 means "disabled" to callers.
func (d Durability) checkpointBytes() int64 {
	switch {
	case d.CheckpointBytes > 0:
		return d.CheckpointBytes
	case d.CheckpointBytes < 0:
		return 0
	default:
		return defaultCheckpointBytes
	}
}

const (
	walMagic          = "GRAPHWAL1\n"
	walFileName       = "wal.log"
	snapshotFileName  = "snapshot.json"
	walTempPrefix     = ".wal-tmp-"
	maxWALRecordBytes = 1 << 27
	walRecVersion     = 1
)

// walFile is the file handle the WAL writes through. os.File satisfies
// it; tests substitute a fault-injecting double that kills writes at a
// chosen byte offset (crash_test.go).
type walFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
	Name() string
}

// walFS is the filesystem surface the WAL mutates through, injectable
// for fault testing. Read paths (recovery scans) use the real
// filesystem directly — the fault model is "the process dies during a
// write", and recovery runs in the next process.
type walFS interface {
	OpenAppend(path string) (walFile, error)
	CreateTemp(dir, pattern string) (walFile, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	SyncDir(dir string) error
}

// osFS is the production walFS.
type osFS struct{}

func (osFS) OpenAppend(path string) (walFile, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o666)
}

func (osFS) CreateTemp(dir, pattern string) (walFile, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

// SyncDir fsyncs the directory so a just-renamed file's entry is
// durable (best effort: some filesystems refuse directory fsync).
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// WAL is the write-ahead log of one durable Store. All methods are
// safe for concurrent use; the store calls Append under its writer
// baton. Obtain one from Recover.
type WAL struct {
	dir  string
	fs   walFS
	opts Durability

	mu          sync.Mutex
	f           walFile
	size        int64 // complete bytes in wal.log
	lastEpoch   int64 // epoch of the newest record (appended or replayed)
	ckptEpoch   int64 // epoch covered by snapshot.json
	records     int64 // records appended since open
	replayed    int64 // records replayed by recovery at open
	checkpoints int64 // checkpoints taken since open
	failed      error // sticky first failure
	dirty       bool  // unsynced bytes (SyncInterval)
	closed      bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// openWAL opens dir/wal.log for appending after recovery has scanned
// (and torn-tail-truncated) it. size is the byte length of the valid
// prefix; a zero-size log gets a fresh magic header.
func openWAL(dir string, opts Durability, fs walFS, size, lastEpoch, ckptEpoch, replayed int64) (*WAL, error) {
	f, err := fs.OpenAppend(filepath.Join(dir, walFileName))
	if err != nil {
		return nil, fmt.Errorf("graph: open wal: %w", err)
	}
	w := &WAL{
		dir: dir, fs: fs, opts: opts, f: f,
		size: size, lastEpoch: lastEpoch, ckptEpoch: ckptEpoch, replayed: replayed,
	}
	if size == 0 {
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if opts.Sync == SyncInterval {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// writeHeader writes and syncs the magic header of an empty log.
// Callers hold mu (or own the WAL exclusively).
func (w *WAL) writeHeader() error {
	if _, err := io.WriteString(w.f, walMagic); err != nil {
		return w.fail(fmt.Errorf("graph: wal header: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(fmt.Errorf("graph: wal header sync: %w", err))
	}
	w.size = int64(len(walMagic))
	return nil
}

// fail records the first failure and poisons the WAL. Callers hold mu.
func (w *WAL) fail(err error) error {
	if w.failed == nil {
		w.failed = err
	}
	return w.failed
}

// flushLoop is the SyncInterval background fsyncer.
func (w *WAL) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opts.syncEvery())
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && w.failed == nil && !w.closed {
				if err := w.f.Sync(); err != nil {
					w.fail(fmt.Errorf("graph: wal sync: %w", err))
				}
				w.dirty = false
			}
			w.mu.Unlock()
		}
	}
}

// Append writes the record for one committed epoch. d must be the
// epoch's net delta with Epoch set; g the post-commit graph the
// record's values are read from. Called by the store under the writer
// baton, before the epoch is published.
func (w *WAL) Append(d *Delta, g *Graph) error {
	payload, err := encodeRecord(recordFromDelta(d, g))
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.closed {
		return fmt.Errorf("graph: append to closed wal")
	}
	if _, err := w.f.Write(frame); err != nil {
		// The tail may now hold a partial record; appending after it
		// would hide later records behind the torn one. Poison.
		return w.fail(fmt.Errorf("graph: wal append: %w", err))
	}
	w.size += int64(len(frame))
	w.records++
	w.lastEpoch = d.Epoch
	switch w.opts.Sync {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return w.fail(fmt.Errorf("graph: wal sync: %w", err))
		}
	case SyncInterval:
		w.dirty = true
	}
	return nil
}

// wantCheckpoint reports whether the log has outgrown its checkpoint
// threshold.
func (w *WAL) wantCheckpoint() bool {
	limit := w.opts.checkpointBytes()
	if limit <= 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed == nil && !w.closed && w.size >= limit
}

// checkpoint writes g (the state as of epoch) as the new snapshot and
// truncates the log. Called with the store's writer baton held, so g
// cannot change underneath. The snapshot lands via temp-file + rename:
// until the rename the old snapshot is intact, and a failure before it
// leaves the log untouched — nothing durable is lost, the error only
// means compaction didn't happen.
func (w *WAL) checkpoint(g *Graph, epoch int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.closed {
		return fmt.Errorf("graph: checkpoint of closed wal")
	}
	tmp, err := w.fs.CreateTemp(w.dir, walTempPrefix+"*")
	if err != nil {
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	discard := func(e error) error {
		tmp.Close()
		w.fs.Remove(tmpName)
		return fmt.Errorf("graph: checkpoint: %w", e)
	}
	bw := bufio.NewWriterSize(tmp, 64<<10)
	if err := writeJSONState(bw, g, epoch); err != nil {
		return discard(err)
	}
	if err := bw.Flush(); err != nil {
		return discard(err)
	}
	if err := tmp.Sync(); err != nil {
		return discard(err)
	}
	if err := tmp.Close(); err != nil {
		w.fs.Remove(tmpName)
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	if err := w.fs.Rename(tmpName, filepath.Join(w.dir, snapshotFileName)); err != nil {
		w.fs.Remove(tmpName)
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	// The snapshot is durable: every epoch <= epoch is covered. Prune
	// the log. If the truncate fails the log just keeps its old records
	// (recovery skips them by epoch); a failure after it poisons the
	// WAL, because the append offset can no longer be trusted.
	w.ckptEpoch = epoch
	w.checkpoints++
	if err := w.f.Truncate(0); err != nil {
		return nil
	}
	w.size = 0
	return w.writeHeader()
}

// Close stops the background fsyncer, flushes the log and closes it.
// Further operations fail. It returns the WAL's sticky error, if any.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	w.closed = true
	stop := w.flushStop
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.flushDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed == nil {
		if err := w.f.Sync(); err != nil {
			w.fail(fmt.Errorf("graph: wal close sync: %w", err))
		}
	}
	w.f.Close()
	return w.failed
}

// WALStatus is a point-in-time summary of a write-ahead log, for
// observability (cypher.DB.WALStatus, the shell's :wal meta).
type WALStatus struct {
	// Dir is the data directory holding wal.log and snapshot.json.
	Dir string
	// Sync is the configured fsync policy.
	Sync SyncMode
	// Bytes is the current byte length of the log.
	Bytes int64
	// LastEpoch is the newest epoch with a durable log record (or
	// covered by the snapshot, if newer).
	LastEpoch int64
	// CheckpointEpoch is the epoch the current snapshot covers.
	CheckpointEpoch int64
	// Records counts records appended since open.
	Records int64
	// Replayed counts records recovery replayed at open.
	Replayed int64
	// Checkpoints counts checkpoints taken since open.
	Checkpoints int64
	// Err is the sticky failure that poisoned the log, if any.
	Err error
}

// Status reports the WAL's current counters.
func (w *WAL) Status() WALStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	last := w.lastEpoch
	if w.ckptEpoch > last {
		last = w.ckptEpoch
	}
	return WALStatus{
		Dir:             w.dir,
		Sync:            w.opts.Sync,
		Bytes:           w.size,
		LastEpoch:       last,
		CheckpointEpoch: w.ckptEpoch,
		Records:         w.records,
		Replayed:        w.replayed,
		Checkpoints:     w.checkpoints,
		Err:             w.failed,
	}
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

// walKV is one serialized property.
type walKV struct {
	key string
	val value.Value
}

// walNode is one created node in a record.
type walNode struct {
	id     int64
	labels []string
	props  []walKV
}

// walRel is one created relationship in a record.
type walRel struct {
	id       int64
	typ      string
	src, tgt int64
	props    []walKV
}

// walLabel is one (node, label) change in a record.
type walLabel struct {
	id    int64
	label string
}

// walProp is one property write on a surviving entity: the final value
// when has is true, a removal when false.
type walProp struct {
	rel bool // relationship property (else node)
	id  int64
	key string
	has bool
	val value.Value
}

// walRecord is the decoded form of one log record: a Delta with the
// values the value-blind Delta omits, ready to replay.
type walRecord struct {
	epoch             int64
	nextNode, nextRel int64
	relsDeleted       []int64
	nodesDeleted      []int64
	nodesCreated      []walNode
	relsCreated       []walRel
	labelsAdded       []walLabel
	labelsRemoved     []walLabel
	props             []walProp
	indexesDropped    []IndexKey
	indexesCreated    []IndexKey
}

// recordFromDelta builds the log record for a committed delta, reading
// created entities' content and touched properties' final values from
// the post-commit graph. Delta slices are sorted and entity content is
// emitted in sorted order, so the encoding is deterministic.
func recordFromDelta(d *Delta, g *Graph) *walRecord {
	rec := &walRecord{
		epoch:    d.Epoch,
		nextNode: int64(g.nextNode),
		nextRel:  int64(g.nextRel),
	}
	for _, id := range d.RelsDeleted {
		rec.relsDeleted = append(rec.relsDeleted, int64(id))
	}
	for _, id := range d.NodesDeleted {
		rec.nodesDeleted = append(rec.nodesDeleted, int64(id))
	}
	for _, id := range d.NodesCreated {
		n := g.Node(id)
		wn := walNode{id: int64(id), labels: n.SortedLabels()}
		for _, k := range sortedPropKeys(n.Props) {
			wn.props = append(wn.props, walKV{key: k, val: n.Props[k]})
		}
		rec.nodesCreated = append(rec.nodesCreated, wn)
	}
	for _, id := range d.RelsCreated {
		r := g.Rel(id)
		wr := walRel{id: int64(id), typ: r.Type, src: int64(r.Src), tgt: int64(r.Tgt)}
		for _, k := range sortedPropKeys(r.Props) {
			wr.props = append(wr.props, walKV{key: k, val: r.Props[k]})
		}
		rec.relsCreated = append(rec.relsCreated, wr)
	}
	for _, nl := range d.LabelsAdded {
		rec.labelsAdded = append(rec.labelsAdded, walLabel{id: int64(nl.Node), label: nl.Label})
	}
	for _, nl := range d.LabelsRemoved {
		rec.labelsRemoved = append(rec.labelsRemoved, walLabel{id: int64(nl.Node), label: nl.Label})
	}
	for _, t := range d.PropsTouched {
		p := walProp{rel: t.Entity.Kind == EntityRel, id: t.Entity.ID, key: t.Key}
		if p.rel {
			if r := g.Rel(RelID(p.id)); r != nil {
				p.val, p.has = r.Props[p.key], hasKey(r.Props, p.key)
			}
		} else {
			if n := g.Node(NodeID(p.id)); n != nil {
				p.val, p.has = n.Props[p.key], hasKey(n.Props, p.key)
			}
		}
		rec.props = append(rec.props, p)
	}
	rec.indexesDropped = append(rec.indexesDropped, d.IndexesDropped...)
	rec.indexesCreated = append(rec.indexesCreated, d.IndexesCreated...)
	return rec
}

func hasKey(m map[string]value.Value, k string) bool {
	_, ok := m[k]
	return ok
}

func sortedPropKeys(m map[string]value.Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// encodeRecord serializes a record payload (framing is the caller's).
func encodeRecord(rec *walRecord) ([]byte, error) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	w.WriteByte(walRecVersion)
	WriteVarint(w, rec.epoch)
	WriteVarint(w, rec.nextNode)
	WriteVarint(w, rec.nextRel)
	writeIDs := func(ids []int64) {
		WriteUvarint(w, uint64(len(ids)))
		for _, id := range ids {
			WriteVarint(w, id)
		}
	}
	writeProps := func(props []walKV) error {
		WriteUvarint(w, uint64(len(props)))
		for _, kv := range props {
			WriteBinaryString(w, kv.key)
			if err := WriteBinaryValue(w, kv.val); err != nil {
				return err
			}
		}
		return nil
	}
	writeIDs(rec.relsDeleted)
	writeIDs(rec.nodesDeleted)
	WriteUvarint(w, uint64(len(rec.nodesCreated)))
	for _, n := range rec.nodesCreated {
		WriteVarint(w, n.id)
		WriteUvarint(w, uint64(len(n.labels)))
		for _, l := range n.labels {
			WriteBinaryString(w, l)
		}
		if err := writeProps(n.props); err != nil {
			return nil, err
		}
	}
	WriteUvarint(w, uint64(len(rec.relsCreated)))
	for _, r := range rec.relsCreated {
		WriteVarint(w, r.id)
		WriteBinaryString(w, r.typ)
		WriteVarint(w, r.src)
		WriteVarint(w, r.tgt)
		if err := writeProps(r.props); err != nil {
			return nil, err
		}
	}
	writeLabels := func(ls []walLabel) {
		WriteUvarint(w, uint64(len(ls)))
		for _, l := range ls {
			WriteVarint(w, l.id)
			WriteBinaryString(w, l.label)
		}
	}
	writeLabels(rec.labelsAdded)
	writeLabels(rec.labelsRemoved)
	WriteUvarint(w, uint64(len(rec.props)))
	for _, p := range rec.props {
		kind := byte(0)
		if p.rel {
			kind = 1
		}
		w.WriteByte(kind)
		WriteVarint(w, p.id)
		WriteBinaryString(w, p.key)
		has := byte(0)
		if p.has {
			has = 1
		}
		w.WriteByte(has)
		if p.has {
			if err := WriteBinaryValue(w, p.val); err != nil {
				return nil, err
			}
		}
	}
	writeIndexes := func(ks []IndexKey) {
		WriteUvarint(w, uint64(len(ks)))
		for _, k := range ks {
			WriteBinaryString(w, k.Label)
			WriteBinaryString(w, k.Prop)
		}
	}
	writeIndexes(rec.indexesDropped)
	writeIndexes(rec.indexesCreated)
	if err := w.Flush(); err != nil {
		return nil, err
	}
	if buf.Len() > maxWALRecordBytes {
		return nil, fmt.Errorf("graph: wal record of %d bytes exceeds limit", buf.Len())
	}
	return buf.Bytes(), nil
}

// decodeRecord parses one record payload. Counts and ids are validated
// so a hostile payload cannot force huge allocations or absurd id
// directory growth; structural consistency (endpoints exist, no
// duplicates) is validated by apply.
func decodeRecord(payload []byte) (*walRecord, error) {
	limit := uint64(len(payload))
	r := bufio.NewReader(bytes.NewReader(payload))
	ver, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != walRecVersion {
		return nil, fmt.Errorf("graph: wal record version %d not supported", ver)
	}
	rec := &walRecord{}
	readCount := func() (uint64, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, err
		}
		// Every element costs at least one payload byte.
		if n > limit {
			return 0, fmt.Errorf("graph: wal record count %d exceeds payload", n)
		}
		return n, nil
	}
	readID := func() (int64, error) {
		id, err := binary.ReadVarint(r)
		if err != nil {
			return 0, err
		}
		if id <= 0 || id > maxEntityID {
			return 0, fmt.Errorf("graph: wal record entity id %d out of range", id)
		}
		return id, nil
	}
	if rec.epoch, err = binary.ReadVarint(r); err != nil {
		return nil, err
	}
	if rec.epoch <= 0 {
		return nil, fmt.Errorf("graph: wal record epoch %d out of range", rec.epoch)
	}
	if rec.nextNode, err = binary.ReadVarint(r); err != nil {
		return nil, err
	}
	if rec.nextRel, err = binary.ReadVarint(r); err != nil {
		return nil, err
	}
	if rec.nextNode < 0 || rec.nextNode > maxEntityID || rec.nextRel < 0 || rec.nextRel > maxEntityID {
		return nil, fmt.Errorf("graph: wal record id counters out of range")
	}
	readIDs := func() ([]int64, error) {
		n, err := readCount()
		if err != nil {
			return nil, err
		}
		ids := make([]int64, 0, binPrealloc(n))
		for i := uint64(0); i < n; i++ {
			id, err := readID()
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		return ids, nil
	}
	readProps := func() ([]walKV, error) {
		n, err := readCount()
		if err != nil {
			return nil, err
		}
		props := make([]walKV, 0, binPrealloc(n))
		for i := uint64(0); i < n; i++ {
			k, err := ReadBinaryString(r)
			if err != nil {
				return nil, err
			}
			v, err := ReadBinaryValue(r)
			if err != nil {
				return nil, err
			}
			props = append(props, walKV{key: k, val: v})
		}
		return props, nil
	}
	if rec.relsDeleted, err = readIDs(); err != nil {
		return nil, err
	}
	if rec.nodesDeleted, err = readIDs(); err != nil {
		return nil, err
	}
	n, err := readCount()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var wn walNode
		if wn.id, err = readID(); err != nil {
			return nil, err
		}
		nl, err := readCount()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nl; j++ {
			l, err := ReadBinaryString(r)
			if err != nil {
				return nil, err
			}
			wn.labels = append(wn.labels, l)
		}
		if wn.props, err = readProps(); err != nil {
			return nil, err
		}
		rec.nodesCreated = append(rec.nodesCreated, wn)
	}
	if n, err = readCount(); err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var wr walRel
		if wr.id, err = readID(); err != nil {
			return nil, err
		}
		if wr.typ, err = ReadBinaryString(r); err != nil {
			return nil, err
		}
		if wr.src, err = readID(); err != nil {
			return nil, err
		}
		if wr.tgt, err = readID(); err != nil {
			return nil, err
		}
		if wr.props, err = readProps(); err != nil {
			return nil, err
		}
		rec.relsCreated = append(rec.relsCreated, wr)
	}
	readLabels := func() ([]walLabel, error) {
		n, err := readCount()
		if err != nil {
			return nil, err
		}
		ls := make([]walLabel, 0, binPrealloc(n))
		for i := uint64(0); i < n; i++ {
			var wl walLabel
			if wl.id, err = readID(); err != nil {
				return nil, err
			}
			if wl.label, err = ReadBinaryString(r); err != nil {
				return nil, err
			}
			ls = append(ls, wl)
		}
		return ls, nil
	}
	if rec.labelsAdded, err = readLabels(); err != nil {
		return nil, err
	}
	if rec.labelsRemoved, err = readLabels(); err != nil {
		return nil, err
	}
	if n, err = readCount(); err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var p walProp
		kind, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if kind > 1 {
			return nil, fmt.Errorf("graph: wal record property kind %d", kind)
		}
		p.rel = kind == 1
		if p.id, err = readID(); err != nil {
			return nil, err
		}
		if p.key, err = ReadBinaryString(r); err != nil {
			return nil, err
		}
		has, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if has > 1 {
			return nil, fmt.Errorf("graph: wal record property marker %d", has)
		}
		p.has = has == 1
		if p.has {
			if p.val, err = ReadBinaryValue(r); err != nil {
				return nil, err
			}
		}
		rec.props = append(rec.props, p)
	}
	readIndexes := func() ([]IndexKey, error) {
		n, err := readCount()
		if err != nil {
			return nil, err
		}
		ks := make([]IndexKey, 0, binPrealloc(n))
		for i := uint64(0); i < n; i++ {
			var k IndexKey
			if k.Label, err = ReadBinaryString(r); err != nil {
				return nil, err
			}
			if k.Prop, err = ReadBinaryString(r); err != nil {
				return nil, err
			}
			if k.Label == "" || k.Prop == "" {
				return nil, fmt.Errorf("graph: wal record malformed index key")
			}
			ks = append(ks, k)
		}
		return ks, nil
	}
	if rec.indexesDropped, err = readIndexes(); err != nil {
		return nil, err
	}
	if rec.indexesCreated, err = readIndexes(); err != nil {
		return nil, err
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: wal record has trailing bytes")
	}
	return rec, nil
}

// apply replays one record onto g, in the order the format defines:
// deletions first (relationships before their endpoints), then
// creations (nodes before relationships), label changes, property
// writes, and schema changes last so rebuilt indexes see final
// content. Every inconsistency — a deletion of a missing entity, a
// dangling endpoint — is a hard error: the record passed its CRC, so
// this is corruption, not a torn tail.
func (rec *walRecord) apply(g *Graph) error {
	for _, id := range rec.relsDeleted {
		if !g.HasRel(RelID(id)) {
			return fmt.Errorf("graph: wal deletes missing relationship %d", id)
		}
		g.DeleteRel(RelID(id))
	}
	for _, id := range rec.nodesDeleted {
		if !g.HasNode(NodeID(id)) {
			return fmt.Errorf("graph: wal deletes missing node %d", id)
		}
		if err := g.DeleteNode(NodeID(id)); err != nil {
			return fmt.Errorf("graph: wal replay: %w", err)
		}
	}
	for _, wn := range rec.nodesCreated {
		if g.HasNode(NodeID(wn.id)) {
			return fmt.Errorf("graph: wal creates duplicate node %d", wn.id)
		}
		n := &Node{
			ID:     NodeID(wn.id),
			Labels: make(map[string]struct{}, len(wn.labels)),
			Props:  make(map[string]value.Value, len(wn.props)),
		}
		for _, l := range wn.labels {
			n.Labels[l] = struct{}{}
		}
		for _, kv := range wn.props {
			if !value.IsNull(kv.val) {
				n.Props[kv.key] = kv.val
			}
		}
		g.restoreNode(n)
	}
	for _, wr := range rec.relsCreated {
		if g.HasRel(RelID(wr.id)) {
			return fmt.Errorf("graph: wal creates duplicate relationship %d", wr.id)
		}
		if wr.typ == "" {
			return fmt.Errorf("graph: wal relationship %d has no type", wr.id)
		}
		if !g.HasNode(NodeID(wr.src)) || !g.HasNode(NodeID(wr.tgt)) {
			return fmt.Errorf("graph: wal relationship %d has dangling endpoints", wr.id)
		}
		r := &Rel{
			ID:    RelID(wr.id),
			Type:  wr.typ,
			Src:   NodeID(wr.src),
			Tgt:   NodeID(wr.tgt),
			Props: make(map[string]value.Value, len(wr.props)),
		}
		for _, kv := range wr.props {
			if !value.IsNull(kv.val) {
				r.Props[kv.key] = kv.val
			}
		}
		g.restoreRel(r)
	}
	for _, wl := range rec.labelsAdded {
		if err := g.AddLabel(NodeID(wl.id), wl.label); err != nil {
			return fmt.Errorf("graph: wal replay: %w", err)
		}
	}
	for _, wl := range rec.labelsRemoved {
		if err := g.RemoveLabel(NodeID(wl.id), wl.label); err != nil {
			return fmt.Errorf("graph: wal replay: %w", err)
		}
	}
	for _, p := range rec.props {
		v := p.val
		if !p.has {
			v = value.NullValue
		}
		var err error
		if p.rel {
			err = g.SetRelProp(RelID(p.id), p.key, v)
		} else {
			err = g.SetNodeProp(NodeID(p.id), p.key, v)
		}
		if err != nil {
			return fmt.Errorf("graph: wal replay: %w", err)
		}
	}
	for _, k := range rec.indexesDropped {
		g.DropIndex(k.Label, k.Prop)
	}
	for _, k := range rec.indexesCreated {
		g.CreateIndex(k.Label, k.Prop)
	}
	if NodeID(rec.nextNode) > g.nextNode {
		g.nextNode = NodeID(rec.nextNode)
	}
	if RelID(rec.nextRel) > g.nextRel {
		g.nextRel = RelID(rec.nextRel)
	}
	return nil
}
