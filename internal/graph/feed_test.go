package graph

import (
	"reflect"
	"testing"

	"repro/internal/value"
)

// TestCommitDeltaContents pins what the per-epoch delta reports: net
// creations/deletions, prop/label touches on surviving pre-existing
// entities only, and netting of within-transaction churn.
func TestCommitDeltaContents(t *testing.T) {
	g := New()
	keep := g.CreateNode([]string{"K"}, value.Map{"v": value.Int(1)})
	gone := g.CreateNode([]string{"G"}, nil)
	s := NewStore(g)

	w := s.BeginWrite()
	wg := w.Graph()
	created := wg.CreateNode([]string{"N"}, nil)
	// Created-then-deleted churn must cancel entirely, including its
	// label and property writes.
	churn := wg.CreateNode([]string{"C"}, nil)
	if err := wg.SetNodeProp(churn.ID, "x", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	wg.DetachDeleteNode(churn.ID)
	// Prop + label on a surviving pre-existing node.
	if err := wg.SetNodeProp(keep.ID, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := wg.AddLabel(keep.ID, "L"); err != nil {
		t.Fatal(err)
	}
	// Label toggled back and forth nets to nothing.
	if err := wg.AddLabel(keep.ID, "Tmp"); err != nil {
		t.Fatal(err)
	}
	if err := wg.RemoveLabel(keep.ID, "Tmp"); err != nil {
		t.Fatal(err)
	}
	// Deleting a pre-existing node absorbs its prop writes.
	if err := wg.SetNodeProp(gone.ID, "y", value.Int(3)); err != nil {
		t.Fatal(err)
	}
	wg.DetachDeleteNode(gone.ID)
	rel, err := wg.CreateRel(keep.ID, created.ID, "R", nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.CreateIndex("N", "p")
	w.Commit()

	sn := s.Acquire()
	defer sn.Release()
	d := sn.Delta()
	if d == nil {
		t.Fatal("commit with changes produced no delta")
	}
	if d.Epoch != sn.Epoch() || d.Epoch != 1 {
		t.Fatalf("delta epoch %d, snapshot epoch %d", d.Epoch, sn.Epoch())
	}
	if !reflect.DeepEqual(d.NodesCreated, []NodeID{created.ID}) {
		t.Errorf("NodesCreated = %v, want [%d]", d.NodesCreated, created.ID)
	}
	if !reflect.DeepEqual(d.NodesDeleted, []NodeID{gone.ID}) {
		t.Errorf("NodesDeleted = %v, want [%d]", d.NodesDeleted, gone.ID)
	}
	if !reflect.DeepEqual(d.RelsCreated, []RelID{rel.ID}) {
		t.Errorf("RelsCreated = %v, want [%d]", d.RelsCreated, rel.ID)
	}
	if len(d.RelsDeleted) != 0 {
		t.Errorf("RelsDeleted = %v, want empty", d.RelsDeleted)
	}
	if !reflect.DeepEqual(d.PropsTouched, []PropTouch{{Entity: NodeRef(keep.ID), Key: "v"}}) {
		t.Errorf("PropsTouched = %v", d.PropsTouched)
	}
	if !reflect.DeepEqual(d.LabelsAdded, []NodeLabel{{Node: keep.ID, Label: "L"}}) {
		t.Errorf("LabelsAdded = %v", d.LabelsAdded)
	}
	if len(d.LabelsRemoved) != 0 {
		t.Errorf("LabelsRemoved = %v, want empty", d.LabelsRemoved)
	}
	if !reflect.DeepEqual(d.IndexesCreated, []IndexKey{{Label: "N", Prop: "p"}}) {
		t.Errorf("IndexesCreated = %v", d.IndexesCreated)
	}
}

// TestDeltaRollbackAndNoop: rolled-back transactions and no-op commits
// publish epochs without deltas, and statement-level RollbackTo trims
// the corresponding delta entries.
func TestDeltaRollbackAndNoop(t *testing.T) {
	s := NewStore(New())

	w := s.BeginWrite()
	w.Graph().CreateNode([]string{"X"}, nil)
	w.Rollback()
	sn := s.Acquire()
	if sn.Delta() != nil {
		t.Errorf("rolled-back txn carried delta %+v", sn.Delta())
	}
	sn.Release()

	w = s.BeginWrite()
	w.Commit() // no-op transaction
	sn = s.Acquire()
	if sn.Delta() != nil {
		t.Errorf("no-op commit carried delta %+v", sn.Delta())
	}
	sn.Release()

	// Statement rollback inside a committed transaction: only the
	// surviving statement shows up.
	w = s.BeginWrite()
	kept := w.Graph().CreateNode([]string{"X"}, nil)
	mark := w.Journal().Mark()
	w.Graph().CreateNode([]string{"X"}, nil)
	w.Journal().RollbackTo(mark)
	w.Commit()
	sn = s.Acquire()
	defer sn.Release()
	d := sn.Delta()
	if d == nil || !reflect.DeepEqual(d.NodesCreated, []NodeID{kept.ID}) {
		t.Errorf("delta after RollbackTo = %+v, want only node %d", d, kept.ID)
	}
}

// TestOnCommitHookOrderAndScope: hooks fire once per changing commit,
// in epoch order, on both the in-place and copy-on-write paths, and not
// for rollbacks.
func TestOnCommitHookOrderAndScope(t *testing.T) {
	s := NewStore(New())
	var epochs []int64
	var created int
	s.OnCommit(func(d *Delta) {
		epochs = append(epochs, d.Epoch)
		created += len(d.NodesCreated)
	})

	w := s.BeginWrite() // in-place
	w.Graph().CreateNode([]string{"A"}, nil)
	w.Commit()

	pin := s.Acquire()
	w = s.BeginWrite() // copy-on-write
	w.Graph().CreateNode([]string{"A"}, nil)
	w.Commit()

	w = s.BeginWrite() // rolled back: no hook
	w.Graph().CreateNode([]string{"A"}, nil)
	w.Rollback()
	pin.Release()

	if !reflect.DeepEqual(epochs, []int64{1, 2}) {
		t.Errorf("hook epochs = %v, want [1 2]", epochs)
	}
	if created != 2 {
		t.Errorf("hook saw %d creations, want 2", created)
	}
}
