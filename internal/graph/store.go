package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Store is the transactional wrapper around a Graph: it publishes a
// sequence of committed epochs, lets any number of readers pin a
// consistent snapshot of the latest epoch, and serializes writers
// through a single-writer commit pipeline.
//
// The paper makes individual Cypher statements atomic (the journal and
// ChangeSet machinery of this package); the Store extends that to
// *transactions* — groups of statements that commit or roll back as one
// — and to concurrency: readers never block each other and never
// observe a half-applied transaction.
//
// # Epochs and snapshots
//
// The Store holds one published snapshot at a time: the graph as of the
// last committed transaction, tagged with a monotonically increasing
// epoch number. Acquire pins that snapshot (a reference count) and
// returns it; a pinned graph is immutable for as long as the pin is
// held, so readers iterate it with no lock held at all. Release drops
// the pin (and panics on a double release — an unbalanced pin count
// could otherwise silently route a later writer onto the in-place path
// while a reader still streams).
//
// # The single-writer pipeline
//
// BeginWrite hands out the writer baton (a mutex — at most one write
// transaction at a time) and picks the cheapest safe way to mutate:
//
//   - If the published snapshot has NO pinned readers, the writer
//     mutates the published graph in place, exactly like the
//     pre-transactional engine did. New readers arriving mid-write wait
//     until the transaction finishes (they would otherwise observe torn
//     state). This is the fast path: a single-threaded workload pays
//     nothing for the transaction layer.
//   - If readers ARE pinned, the writer works on a copy-on-write clone
//     (cloneCOW): the clone shares every container bucket with the
//     published snapshot and copies only the buckets the transaction
//     touches, so the commit costs O(changes), not O(graph). Current
//     and new readers keep streaming from the published snapshot;
//     Commit atomically publishes the clone as the next epoch, and the
//     old snapshot stays valid until its pins drain.
//
// Because epochs share buckets, an in-place writer may still hold
// structure in common with OLDER pinned epochs; the ownership tags of
// cow.go make that safe — a mutation copies any bucket another epoch
// can still see before writing it.
//
// Commit publishes the transaction's journal with the new epoch; the
// net structural Delta is derived from it lazily (Snapshot.Delta) or
// at commit time when OnCommit hooks are registered.
// Rollback on the copy-on-write path simply discards the clone and
// republishes the pre-transaction content — no undo replay, no bumped
// version or index epoch, so plan caches keyed on those counters
// survive a rolled-back transaction untouched. (Only the id counters
// carry over: ids consumed by a rolled-back transaction stay consumed,
// matching the in-place path's journal-driven rollback.) Readers
// therefore see exactly the pre-commit or the post-commit epoch — never
// anything in between.
type Store struct {
	mu       sync.Mutex
	readable *sync.Cond // readers waiting out an in-place write
	cur      *Snapshot
	inPlace  bool // a write txn is mutating cur's graph in place
	waiting  int  // readers blocked in Acquire by an in-place write

	// writerMu is the single-writer baton: held from BeginWrite until
	// Commit/Rollback, serializing write transactions.
	writerMu sync.Mutex

	// onCommit holds the registered change-feed hooks (OnCommit).
	onCommit []func(*Delta)

	// wal is the write-ahead log of a durable store (nil otherwise).
	// It is set by Recover before the store is shared, never after, so
	// reads need no lock.
	wal *WAL

	epoch int64
}

// NewStore wraps g (which must not be used directly afterwards) in a
// store publishing it as epoch 0.
func NewStore(g *Graph) *Store {
	s := &Store{}
	s.readable = sync.NewCond(&s.mu)
	s.cur = &Snapshot{store: s, g: g}
	return s
}

// Snapshot is a pinned, immutable view of one committed epoch. The
// Graph it exposes is safe for concurrent readers and MUST NOT be
// mutated; Release the pin when done.
type Snapshot struct {
	store *Store
	g     *Graph
	epoch int64
	pins  atomic.Int64

	// The epoch's change record: the committing transaction's journal
	// entries, netted into a Delta lazily (deltaOnce) so commits nobody
	// observes — no OnCommit hooks, Delta never called — skip the
	// netting pass entirely.
	deltaEntries []undoEntry
	deltaOnce    sync.Once
	delta        *Delta
}

// Graph returns the snapshot's immutable graph.
func (sn *Snapshot) Graph() *Graph { return sn.g }

// Epoch reports the committed epoch this snapshot captures.
func (sn *Snapshot) Epoch() int64 { return sn.epoch }

// Delta returns the net structural change the transaction that
// committed this epoch applied, or nil for epoch 0, for rolled-back
// transactions (which change nothing) and for commits with no net
// effect. The delta references the snapshot's graph state: consumers
// resolve entity ids against Graph(). It is derived from the
// transaction's journal on first call (safe under concurrent readers).
func (sn *Snapshot) Delta() *Delta {
	sn.deltaOnce.Do(func() {
		sn.delta = netDelta(sn.deltaEntries)
		if sn.delta != nil {
			sn.delta.Epoch = sn.epoch
		}
		sn.deltaEntries = nil
	})
	return sn.delta
}

// Release drops the pin. The snapshot must not be used afterwards.
// Driving the pin count negative panics, so an unbalanced Release is
// caught at the latest when the count bottoms out — always immediately
// when no other reader holds a pin. (While other pins are outstanding
// an early double release is indistinguishable from their legitimate
// releases and surfaces only at the final one; the count still ends
// negative, so the corruption cannot stay silent and flip a writer
// onto the in-place path forever undetected.)
func (sn *Snapshot) Release() {
	if sn.pins.Add(-1) < 0 {
		panic("graph: Snapshot.Release without a matching Acquire (double release?)")
	}
}

// Acquire pins the latest committed epoch and returns it. If a write
// transaction is mutating the published graph in place (the no-reader
// fast path), Acquire waits for it to finish — the moment a snapshot is
// handed out, its graph is guaranteed immutable.
func (s *Store) Acquire() *Snapshot {
	s.mu.Lock()
	for s.inPlace {
		s.waiting++
		s.readable.Wait()
		s.waiting--
	}
	sn := s.cur
	sn.pins.Add(1)
	s.mu.Unlock()
	return sn
}

// PinnedReaders reports how many readers currently pin the latest
// committed snapshot (Acquire minus Release). Diagnostic: a quiescent
// store reports zero.
func (s *Store) PinnedReaders() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.pins.Load()
}

// Epoch reports the latest committed epoch number.
func (s *Store) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// WAL returns the store's write-ahead log, or nil for an in-memory
// store.
func (s *Store) WAL() *WAL { return s.wal }

// Checkpoint forces a durability checkpoint: the current epoch is
// written as the snapshot and the log truncated. It takes the writer
// baton, so it serializes against write transactions. Errors if the
// store is not durable.
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return fmt.Errorf("graph: checkpoint of a non-durable store")
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	// With the baton held no commit can replace cur, and a published
	// graph is immutable, so the unlocked use of g below is safe.
	s.mu.Lock()
	g, epoch := s.cur.g, s.epoch
	s.mu.Unlock()
	return s.wal.checkpoint(g, epoch)
}

// OnCommit registers fn as a change-feed consumer: after every commit
// that changed anything, fn is called with the new epoch's Delta.
// Hooks run on the committing goroutine, in epoch order, while the
// writer baton is still held — they must return promptly and must not
// start a write transaction on the same store (deadlock); reading via
// Acquire is fine. Rolled-back and no-op transactions produce no call.
func (s *Store) OnCommit(fn func(*Delta)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCommit = append(s.onCommit, fn)
}

// WriteTxn is an open write transaction: a working graph (the published
// graph itself, or a copy-on-write clone when readers are pinned),
// journaled so it can roll back, holding the writer baton until Commit
// or Rollback.
type WriteTxn struct {
	s      *Store
	g      *Graph
	base   *Graph // the epoch the txn started from (== g unless cloned)
	j      *Journal
	cloned bool
	done   bool
}

// BeginWrite opens a write transaction, blocking while another one is
// in flight (single writer). Intended for statement-scoped (implicit,
// auto-commit) transactions: it may take the in-place fast path, which
// makes readers arriving mid-transaction wait until it finishes.
func (s *Store) BeginWrite() *WriteTxn { return s.beginWrite(false) }

// BeginWriteIsolated opens a write transaction that always works on a
// private copy-on-write clone, never blocking readers: the published
// epoch stays readable for the whole transaction. Intended for explicit
// (BEGIN…COMMIT) transactions, whose lifetime is caller-paced and may
// include think time.
func (s *Store) BeginWriteIsolated() *WriteTxn { return s.beginWrite(true) }

func (s *Store) beginWrite(isolated bool) *WriteTxn {
	s.writerMu.Lock()
	s.mu.Lock()
	w := &WriteTxn{s: s}
	cur := s.cur
	w.base = cur.g
	if !isolated && cur.pins.Load() == 0 && s.waiting == 0 {
		// Nobody is reading this epoch: mutate in place; Acquire blocks
		// until the transaction finishes. Buckets still shared with
		// older pinned epochs are protected by the copy-on-write
		// ownership tags.
		w.g = cur.g
		s.inPlace = true
		s.mu.Unlock()
	} else {
		// Readers are streaming from the published snapshot (or were
		// woken by the previous transaction and have not re-pinned yet —
		// counting them prevents a back-to-back writer from starving
		// readers through repeated in-place transactions): leave the
		// snapshot untouched and work on a copy-on-write clone. The
		// clone copies only container directories — O(changes the txn
		// will make), not O(graph) — and runs outside the store mutex so
		// readers keep acquiring snapshots meanwhile; cur cannot be
		// replaced while writerMu is held, and a published graph is
		// immutable, so the unlocked read is safe.
		s.mu.Unlock()
		w.g = cur.g.cloneCOW()
		w.cloned = true
	}
	w.j = w.g.BeginJournal()
	return w
}

// Graph returns the transaction's working graph. Statements of the
// transaction execute (and read their own writes) against it.
func (w *WriteTxn) Graph() *Graph { return w.g }

// Journal returns the transaction's undo journal. Callers use
// Mark/RollbackTo for statement-level rollback within the transaction.
func (w *WriteTxn) Journal() *Journal { return w.j }

// Commit keeps all mutations and publishes the working graph as the
// next epoch, releasing the writer baton. It returns the new epoch.
// The epoch carries the transaction's net Delta (derived from the
// journal), delivered to OnCommit hooks and readable via
// Snapshot.Delta.
//
// On a durable store the delta is appended to the write-ahead log
// (and, under SyncAlways, fsynced) before the epoch is published; a
// log failure is returned here. The in-memory commit still takes
// effect — an in-place transaction has already mutated the shared
// graph and cannot be unwound — but it may not survive a crash, and
// the log is poisoned: every later commit returns the same error.
func (w *WriteTxn) Commit() (int64, error) {
	if w.done {
		panic("graph: commit of a finished write transaction")
	}
	entries := w.j.entries // netted lazily; Journal.Commit only drops its reference
	w.j.Commit()
	return w.finish(entries)
}

// Rollback undoes every mutation of the transaction and publishes the
// restored state, releasing the writer baton. On the in-place path the
// journal replays its inverses; on the copy-on-write path the clone is
// simply discarded and the pre-transaction content republished, leaving
// the cache-relevant counters (Version, IndexEpoch, statistics) exactly
// as they were — a rolled-back transaction no longer invalidates plan
// caches or churns memory. Either way the published epoch equals the
// pre-transaction state content-wise, the epoch number still advances,
// and id counters stay consumed, matching the engine's historical
// statement-rollback behaviour on both paths.
func (w *WriteTxn) Rollback() {
	if w.done {
		panic("graph: rollback of a finished write transaction")
	}
	if w.cloned {
		// The published base still holds the exact pre-transaction
		// state; abandon the working clone (journal included) and
		// republish the base's content. A fresh cloneCOW — not the base
		// graph object itself — keeps the new epoch distinct from the
		// still-pinned old one: publishing the very same *Graph would
		// let a later in-place writer mutate it while old-epoch readers,
		// whose pins the in-place check cannot see, still stream.
		w.j.Discard()
		g := w.base.cloneCOW()
		g.nextNode, g.nextRel = w.g.nextNode, w.g.nextRel
		w.g = g
		w.finish(nil)
		return
	}
	w.j.Rollback()
	w.finish(nil)
}

func (w *WriteTxn) finish(entries []undoEntry) (int64, error) {
	w.done = true
	s := w.s
	// The epoch this transaction will publish. Only finish advances
	// s.epoch, and finish runs under the writer baton, so the unlocked
	// read is safe.
	epoch := s.epoch + 1
	// Write-ahead: on a durable store the delta must be on the log
	// before anyone can observe the epoch. The netting normally
	// deferred to Snapshot.Delta happens here instead, and the result
	// is pre-seeded into the snapshot below so it is not re-derived.
	var (
		d      *Delta
		netted bool
		walErr error
	)
	if s.wal != nil && len(entries) > 0 {
		d = netDelta(entries)
		netted = true
		if d != nil {
			d.Epoch = epoch
			walErr = s.wal.Append(d, w.g)
		}
	}
	s.mu.Lock()
	s.epoch = epoch
	sn := &Snapshot{store: s, g: w.g, epoch: epoch, deltaEntries: entries}
	if netted {
		sn.deltaOnce.Do(func() {
			sn.delta = d
			sn.deltaEntries = nil
		})
	}
	var hooks []func(*Delta)
	if len(entries) > 0 {
		hooks = s.onCommit
	}
	s.cur = sn
	s.inPlace = false
	s.mu.Unlock()
	s.readable.Broadcast()
	// Compact the log once it outgrows the threshold. The record above
	// is already durable, so a checkpoint failure does not undo this
	// commit; if it poisoned the log the next append will say so.
	if walErr == nil && s.wal != nil && s.wal.wantCheckpoint() {
		_ = s.wal.checkpoint(w.g, epoch)
	}
	// Feed hooks run before the writer baton is released so deltas
	// arrive in strict epoch order. Dispatching them forces the lazy
	// netting; without hooks it stays deferred to the first
	// Snapshot.Delta call (or never happens). A panicking hook must not
	// wedge the writer baton or starve later hooks: the first panic is
	// re-raised on this (committing) goroutine only after every hook
	// ran and the baton is released — the commit itself stays published
	// and durable.
	var hookPanic any
	panicked := false
	if len(hooks) > 0 {
		if d := sn.Delta(); d != nil {
			for _, h := range hooks {
				func() {
					defer func() {
						if r := recover(); r != nil && !panicked {
							hookPanic, panicked = r, true
						}
					}()
					h(d)
				}()
			}
		}
	}
	s.writerMu.Unlock()
	if panicked {
		panic(hookPanic)
	}
	return epoch, walErr
}
