package graph

import (
	"sync"
	"sync/atomic"
)

// Store is the transactional wrapper around a Graph: it publishes a
// sequence of committed epochs, lets any number of readers pin a
// consistent snapshot of the latest epoch, and serializes writers
// through a single-writer commit pipeline.
//
// The paper makes individual Cypher statements atomic (the journal and
// ChangeSet machinery of this package); the Store extends that to
// *transactions* — groups of statements that commit or roll back as one
// — and to concurrency: readers never block each other and never
// observe a half-applied transaction.
//
// # Epochs and snapshots
//
// The Store holds one published snapshot at a time: the graph as of the
// last committed transaction, tagged with a monotonically increasing
// epoch number. Acquire pins that snapshot (a reference count) and
// returns it; a pinned graph is immutable for as long as the pin is
// held, so readers iterate it with no lock held at all. Release drops
// the pin.
//
// # The single-writer pipeline
//
// BeginWrite hands out the writer baton (a mutex — at most one write
// transaction at a time) and picks the cheapest safe way to mutate:
//
//   - If the published snapshot has NO pinned readers, the writer
//     mutates the published graph in place, exactly like the
//     pre-transactional engine did. New readers arriving mid-write wait
//     until the transaction finishes (they would otherwise observe torn
//     state). This is the fast path: a single-threaded workload pays
//     nothing for the transaction layer.
//   - If readers ARE pinned, the writer clones the graph and mutates the
//     clone, while current and new readers keep streaming from the
//     published snapshot. Commit atomically publishes the clone as the
//     next epoch; the old snapshot stays valid until its pins drain.
//
// Either way the transaction runs under a journal, so rollback restores
// the pre-transaction state (and the writer's working graph is then
// published unchanged in content, keeping id-counter behaviour
// identical across both paths). Readers therefore see exactly the
// pre-commit or the post-commit epoch — never anything in between.
type Store struct {
	mu       sync.Mutex
	readable *sync.Cond // readers waiting out an in-place write
	cur      *Snapshot
	inPlace  bool // a write txn is mutating cur's graph in place
	waiting  int  // readers blocked in Acquire by an in-place write

	// writerMu is the single-writer baton: held from BeginWrite until
	// Commit/Rollback, serializing write transactions.
	writerMu sync.Mutex

	epoch int64
}

// NewStore wraps g (which must not be used directly afterwards) in a
// store publishing it as epoch 0.
func NewStore(g *Graph) *Store {
	s := &Store{}
	s.readable = sync.NewCond(&s.mu)
	s.cur = &Snapshot{store: s, g: g}
	return s
}

// Snapshot is a pinned, immutable view of one committed epoch. The
// Graph it exposes is safe for concurrent readers and MUST NOT be
// mutated; Release the pin when done.
type Snapshot struct {
	store *Store
	g     *Graph
	epoch int64
	pins  atomic.Int64
}

// Graph returns the snapshot's immutable graph.
func (sn *Snapshot) Graph() *Graph { return sn.g }

// Epoch reports the committed epoch this snapshot captures.
func (sn *Snapshot) Epoch() int64 { return sn.epoch }

// Release drops the pin. The snapshot must not be used afterwards.
func (sn *Snapshot) Release() { sn.pins.Add(-1) }

// Acquire pins the latest committed epoch and returns it. If a write
// transaction is mutating the published graph in place (the no-reader
// fast path), Acquire waits for it to finish — the moment a snapshot is
// handed out, its graph is guaranteed immutable.
func (s *Store) Acquire() *Snapshot {
	s.mu.Lock()
	for s.inPlace {
		s.waiting++
		s.readable.Wait()
		s.waiting--
	}
	sn := s.cur
	sn.pins.Add(1)
	s.mu.Unlock()
	return sn
}

// Epoch reports the latest committed epoch number.
func (s *Store) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// WriteTxn is an open write transaction: a working graph (the published
// graph itself, or a private clone when readers are pinned), journaled
// so it can roll back, holding the writer baton until Commit or
// Rollback.
type WriteTxn struct {
	s      *Store
	g      *Graph
	j      *Journal
	cloned bool
	done   bool
}

// BeginWrite opens a write transaction, blocking while another one is
// in flight (single writer). Intended for statement-scoped (implicit,
// auto-commit) transactions: it may take the in-place fast path, which
// makes readers arriving mid-transaction wait until it finishes.
func (s *Store) BeginWrite() *WriteTxn { return s.beginWrite(false) }

// BeginWriteIsolated opens a write transaction that always works on a
// private clone, never blocking readers: the published epoch stays
// readable for the whole transaction. Intended for explicit
// (BEGIN…COMMIT) transactions, whose lifetime is caller-paced and may
// include think time.
func (s *Store) BeginWriteIsolated() *WriteTxn { return s.beginWrite(true) }

func (s *Store) beginWrite(isolated bool) *WriteTxn {
	s.writerMu.Lock()
	s.mu.Lock()
	w := &WriteTxn{s: s}
	cur := s.cur
	if !isolated && cur.pins.Load() == 0 && s.waiting == 0 {
		// Nobody is reading: mutate in place; Acquire blocks until the
		// transaction finishes.
		w.g = cur.g
		s.inPlace = true
		s.mu.Unlock()
	} else {
		// Readers are streaming from the published snapshot (or were
		// woken by the previous transaction and have not re-pinned yet —
		// counting them prevents a back-to-back writer from starving
		// readers through repeated in-place transactions): leave the
		// snapshot untouched and work on a clone. The O(graph) copy runs
		// outside the store mutex so readers keep acquiring snapshots
		// meanwhile — cur cannot be replaced while writerMu is held, and
		// a published graph is immutable, so the unlocked read is safe.
		s.mu.Unlock()
		w.g = cur.g.Clone()
		w.cloned = true
	}
	w.j = w.g.BeginJournal()
	return w
}

// Graph returns the transaction's working graph. Statements of the
// transaction execute (and read their own writes) against it.
func (w *WriteTxn) Graph() *Graph { return w.g }

// Journal returns the transaction's undo journal. Callers use
// Mark/RollbackTo for statement-level rollback within the transaction.
func (w *WriteTxn) Journal() *Journal { return w.j }

// Commit keeps all mutations and publishes the working graph as the
// next epoch, releasing the writer baton. It returns the new epoch.
func (w *WriteTxn) Commit() int64 {
	if w.done {
		panic("graph: commit of a finished write transaction")
	}
	w.j.Commit()
	return w.finish()
}

// Rollback undoes every mutation of the transaction (via the journal)
// and publishes the restored working graph, releasing the writer baton.
// Content-wise the published epoch equals the pre-transaction state;
// the epoch number still advances, and id counters stay consumed,
// matching the engine's historical statement-rollback behaviour on both
// the in-place and the clone path.
func (w *WriteTxn) Rollback() {
	if w.done {
		panic("graph: rollback of a finished write transaction")
	}
	w.j.Rollback()
	w.finish()
}

func (w *WriteTxn) finish() int64 {
	w.done = true
	s := w.s
	s.mu.Lock()
	s.epoch++
	epoch := s.epoch
	s.cur = &Snapshot{store: s, g: w.g, epoch: epoch}
	s.inPlace = false
	s.mu.Unlock()
	s.readable.Broadcast()
	s.writerMu.Unlock()
	return epoch
}
