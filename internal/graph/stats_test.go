package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/value"
)

// normalizeStats drops empty maps so reflect.DeepEqual compares the
// counted content, not nil-vs-allocated representation.
func normalizeStats(s Stats) Stats {
	if len(s.Labels) == 0 {
		s.Labels = nil
	}
	if len(s.RelTypes) == 0 {
		s.RelTypes = nil
	}
	if len(s.OutDeg) == 0 {
		s.OutDeg = nil
	}
	if len(s.InDeg) == 0 {
		s.InDeg = nil
	}
	return s
}

// checkStats asserts the incremental counters equal a from-scratch
// recount, including the O(1) read API derived from them.
func checkStats(t *testing.T, g *Graph, ctx string) {
	t.Helper()
	want := normalizeStats(ComputeStats(g))
	got := normalizeStats(g.Stats())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: incremental stats diverged\n got: %+v\nwant: %+v", ctx, got, want)
	}
	// The any-type degree counters must be the per-type sums.
	perLabelOut := map[string]int{}
	perLabelIn := map[string]int{}
	for k, c := range want.OutDeg {
		perLabelOut[k.Label] += c
	}
	for k, c := range want.InDeg {
		perLabelIn[k.Label] += c
	}
	for l, c := range perLabelOut {
		if got := g.OutRelCount(l, ""); got != c {
			t.Fatalf("%s: OutRelCount(%s, any) = %d, want %d", ctx, l, got, c)
		}
	}
	for l, c := range perLabelIn {
		if got := g.InRelCount(l, ""); got != c {
			t.Fatalf("%s: InRelCount(%s, any) = %d, want %d", ctx, l, got, c)
		}
	}
	for l, c := range want.Labels {
		if got := g.NodeCountByLabel(l); got != c {
			t.Fatalf("%s: NodeCountByLabel(%s) = %d, want %d", ctx, l, got, c)
		}
	}
	for ty, c := range want.RelTypes {
		if got := g.RelCountByType(ty); got != c {
			t.Fatalf("%s: RelCountByType(%s) = %d, want %d", ctx, ty, got, c)
		}
	}
}

// TestStatsIncrementalMatchesRecount drives random mutation sequences —
// CREATE/DELETE of nodes and relationships, label changes, unchecked
// legacy deletions that leave dangling relationships, and journal
// rollbacks — and requires the incremental counters to equal a full
// recount after every batch.
func TestStatsIncrementalMatchesRecount(t *testing.T) {
	labels := []string{"A", "B", "C"}
	types := []string{"R", "S"}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var nodes []NodeID
		var rels []RelID

		randomLabels := func() []string {
			var out []string
			for _, l := range labels {
				if rng.Intn(2) == 0 {
					out = append(out, l)
				}
			}
			return out
		}
		pickNode := func() (NodeID, bool) {
			for len(nodes) > 0 {
				i := rng.Intn(len(nodes))
				if g.HasNode(nodes[i]) {
					return nodes[i], true
				}
				nodes = append(nodes[:i], nodes[i+1:]...)
			}
			return 0, false
		}
		pickRel := func() (RelID, bool) {
			for len(rels) > 0 {
				i := rng.Intn(len(rels))
				if g.HasRel(rels[i]) {
					return rels[i], true
				}
				rels = append(rels[:i], rels[i+1:]...)
			}
			return 0, false
		}

		mutate := func() {
			switch op := rng.Intn(10); op {
			case 0, 1, 2:
				n := g.CreateNode(randomLabels(), value.Map{"v": value.Int(int64(rng.Intn(10)))})
				nodes = append(nodes, n.ID)
			case 3, 4:
				src, ok1 := pickNode()
				tgt, ok2 := pickNode()
				if ok1 && ok2 {
					r, err := g.CreateRel(src, tgt, types[rng.Intn(len(types))], nil)
					if err != nil {
						t.Fatal(err)
					}
					rels = append(rels, r.ID)
				}
			case 5:
				if id, ok := pickRel(); ok {
					g.DeleteRel(id)
				}
			case 6:
				if id, ok := pickNode(); ok {
					g.DetachDeleteNode(id)
				}
			case 7:
				// Legacy unchecked deletion: may leave dangling rels whose
				// endpoint label contributions must vanish.
				if id, ok := pickNode(); ok {
					g.DeleteNodeUnchecked(id)
				}
			case 8:
				if id, ok := pickNode(); ok {
					if err := g.AddLabel(id, labels[rng.Intn(len(labels))]); err != nil {
						t.Fatal(err)
					}
				}
			case 9:
				if id, ok := pickNode(); ok {
					if err := g.RemoveLabel(id, labels[rng.Intn(len(labels))]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}

		for batch := 0; batch < 40; batch++ {
			useJournal := rng.Intn(3) != 0
			rollback := useJournal && rng.Intn(2) == 0
			var j *Journal
			if useJournal {
				j = g.BeginJournal()
			}
			for i := 0; i < 1+rng.Intn(8); i++ {
				mutate()
			}
			if j != nil {
				if rollback {
					j.Rollback()
				} else {
					j.Commit()
				}
			}
			checkStats(t, g, fmt.Sprintf("seed=%d batch=%d rollback=%v", seed, batch, rollback))
		}

		// Clone and codec round-trip must carry (or rebuild) the counters.
		checkStats(t, g.Clone(), fmt.Sprintf("seed=%d clone", seed))
		// The codec refuses dangling relationships; repair the structural
		// invariant first (as a statement-end commit check would insist).
		for _, id := range g.RelIDs() {
			r := g.Rel(id)
			if !g.HasNode(r.Src) || !g.HasNode(r.Tgt) {
				g.DeleteRel(id)
			}
		}
		checkStats(t, g, fmt.Sprintf("seed=%d repaired", seed))
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		checkStats(t, g2, fmt.Sprintf("seed=%d codec", seed))
	}
}

// TestStatsDegreeAverages pins the degree estimates the planner reads.
func TestStatsDegreeAverages(t *testing.T) {
	g := New()
	var users []NodeID
	for i := 0; i < 4; i++ {
		users = append(users, g.CreateNode([]string{"User"}, nil).ID)
	}
	item := g.CreateNode([]string{"Item"}, nil).ID
	for _, u := range users {
		if _, err := g.CreateRel(u, item, "BUYS", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.AvgOutDegree("User", "BUYS"); got != 1 {
		t.Errorf("AvgOutDegree(User, BUYS) = %v, want 1", got)
	}
	if got := g.AvgInDegree("Item", "BUYS"); got != 4 {
		t.Errorf("AvgInDegree(Item, BUYS) = %v, want 4", got)
	}
	if got := g.AvgInDegree("User", "BUYS"); got != 0 {
		t.Errorf("AvgInDegree(User, BUYS) = %v, want 0", got)
	}
	if got := g.AvgOutDegree("", "BUYS"); got != 4.0/5.0 {
		t.Errorf("AvgOutDegree(any, BUYS) = %v, want 0.8", got)
	}
}
