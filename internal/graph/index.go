package graph

// Property indexes maintained incrementally under mutation.
//
// A property index is a hash index on a (label, property) pair: it maps
// canonical value keys (value.Key, under which Cypher-equivalent values
// — e.g. 1 and 1.0 — share a key) to the set of nodes that carry the
// label and store that value under the property. The match planner
// (internal/match) turns pushed `n.prop = <expr>` conjuncts and inline
// property maps into index seeks, so an equality-anchored MATCH or a
// bulk MERGE touches one bucket instead of scanning the label.
//
// Because the source paper is about updates, the index — like the
// planner statistics in stats.go — must stay correct while every
// mutation path runs: CreateNode/SetNodeProp/AddLabel/RemoveLabel,
// checked/unchecked/detach deletion, journal rollback (statement- and
// transaction-level), ChangeSet application, codec decode and Clone.
// Each of those paths calls one of the index* hooks below; the
// invariant "index contents == full rescan" is exercised by a
// property-style test over random mutation/rollback sequences
// (index_test.go, the sibling of stats_test.go).
//
// The index participates in the copy-on-write commit path (cow.go):
// cloneShared hands a write transaction an index whose bucket directory
// and bucket sets are all shared with the published epoch, and the
// maintenance hooks copy exactly the directory shard and bucket a write
// touches. A 1-row write against a 100k-entry index therefore copies
// one bucket, not the index.
//
// Seek soundness: an index seek enumerates the bucket of the sought
// value's key and still runs the full per-candidate checks
// (labels, inline property maps, pushed predicates). Key equality is
// value equivalence, which is implied by Cypher ternary equality being
// True, so the bucket is a superset of the true matches and the
// post-checks never lose a row; candidates come back in ascending node
// id, a subset of the label scan's order, so result order is unchanged.

import (
	"sort"

	"repro/internal/value"
)

// IndexKey identifies a property index by node label and property name.
type IndexKey struct {
	Label string
	Prop  string
}

// propIndex is the hash index for one (label, property) pair: canonical
// value keys to node-id sets, stored in the sharded copy-on-write
// strMap of cow.go. entries counts (node, value) pairs so the planner
// can estimate the average bucket size in O(1).
type propIndex struct {
	buckets strMap
	entries int
}

func newPropIndex() *propIndex {
	return &propIndex{}
}

// add inserts node id under value v on behalf of the graph generation
// tag, copying the touched directory shard and bucket if still shared.
func (x *propIndex) add(tag uint64, id NodeID, v value.Value) {
	k := value.Key(v)
	if set := x.buckets.bucket(k); set != nil {
		if _, dup := set[id]; dup {
			return
		}
	}
	_, set := x.buckets.writableBucket(tag, k)
	set.m[id] = struct{}{}
	x.entries++
}

// remove deletes node id's entry under value v, copying only when the
// entry is actually present.
func (x *propIndex) remove(tag uint64, id NodeID, v value.Value) {
	k := value.Key(v)
	cur := x.buckets.bucket(k)
	if cur == nil {
		return
	}
	if _, had := cur[id]; !had {
		return
	}
	sh, set := x.buckets.writableBucket(tag, k)
	delete(set.m, id)
	x.entries--
	if len(set.m) == 0 {
		delete(sh.m, k)
		x.buckets.keys--
	}
}

// cloneShared returns an index sharing every directory shard and bucket
// with x, for the copy-on-write commit path. The clone's writes copy
// shards/buckets via the owner-tag checks above.
func (x *propIndex) cloneShared() *propIndex {
	return &propIndex{buckets: x.buckets, entries: x.entries}
}

// cloneDeep rebuilds a fully private copy owned by tag (Graph.Clone).
func (x *propIndex) cloneDeep(tag uint64) *propIndex {
	c := &propIndex{entries: x.entries}
	c.buckets.keys = x.buckets.keys
	for si, sh := range x.buckets.shards {
		if sh == nil {
			continue
		}
		ns := &strShard{m: make(map[string]*idSetCOW, len(sh.m)), owner: tag}
		for k, set := range sh.m {
			cs := &idSetCOW{m: make(map[NodeID]struct{}, len(set.m)), owner: tag}
			for n := range set.m {
				cs.m[n] = struct{}{}
			}
			ns.m[k] = cs
		}
		c.buckets.shards[si] = ns
	}
	return c
}

// each calls f for every (canonical key, bucket) pair, in no particular
// order. The bucket map must not be mutated.
func (x *propIndex) each(f func(key string, bucket map[NodeID]struct{})) {
	for _, sh := range x.buckets.shards {
		if sh == nil {
			continue
		}
		for k, set := range sh.m {
			f(k, set.m)
		}
	}
}

// CreateIndex creates a property index on (label, prop), populating it
// from the current graph contents. Creating an index that already
// exists is a no-op; the return value reports whether a new index was
// built. The creation is journaled: rolling back the enclosing
// statement or transaction drops the index again.
func (g *Graph) CreateIndex(label, prop string) bool {
	key := IndexKey{Label: label, Prop: prop}
	if _, exists := g.indexes[key]; exists {
		return false
	}
	g.buildIndex(key)
	if g.journal != nil {
		g.journal.record(undoCreateIndex{key: key})
	}
	return true
}

// buildIndex constructs and installs the index for key from a scan of
// the label, without journaling (shared by CreateIndex and the
// DROP INDEX undo path).
func (g *Graph) buildIndex(key IndexKey) {
	idx := newPropIndex()
	for _, id := range g.NodeIDsByLabel(key.Label) {
		if v, ok := g.Node(id).Props[key.Prop]; ok {
			idx.add(g.tag, id, v)
		}
	}
	if g.indexes == nil {
		g.indexes = make(map[IndexKey]*propIndex)
	}
	g.indexes[key] = idx
	g.version++
	g.indexEpoch++
}

// DropIndex removes the property index on (label, prop), reporting
// whether one existed. The drop is journaled: rolling back the
// enclosing statement or transaction rebuilds the index.
func (g *Graph) DropIndex(label, prop string) bool {
	key := IndexKey{Label: label, Prop: prop}
	if _, exists := g.indexes[key]; !exists {
		return false
	}
	g.removeIndex(key)
	if g.journal != nil {
		g.journal.record(undoDropIndex{key: key})
	}
	return true
}

// removeIndex uninstalls the index for key without journaling (shared
// by DropIndex and the CREATE INDEX undo path).
func (g *Graph) removeIndex(key IndexKey) {
	delete(g.indexes, key)
	g.version++
	g.indexEpoch++
}

// HasIndex reports whether a property index exists on (label, prop).
func (g *Graph) HasIndex(label, prop string) bool {
	_, ok := g.indexes[IndexKey{Label: label, Prop: prop}]
	return ok
}

// Indexes lists the graph's property indexes sorted by label, then
// property.
func (g *Graph) Indexes() []IndexKey {
	out := make([]IndexKey, 0, len(g.indexes))
	for k := range g.indexes {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Prop < out[j].Prop
	})
	return out
}

// IndexEpoch reports a counter bumped by every CreateIndex/DropIndex
// (including their rollbacks). The match planner keys its plan cache on
// it so index creation and drop invalidate cached plans immediately.
func (g *Graph) IndexEpoch() int64 { return g.indexEpoch }

// NodeIDsByProp returns, in ascending order, the ids of nodes carrying
// the label whose stored property equals v under value equivalence —
// one bucket of the (label, prop) index. It returns nil when no such
// index exists; callers gate on HasIndex.
func (g *Graph) NodeIDsByProp(label, prop string, v value.Value) []NodeID {
	idx, ok := g.indexes[IndexKey{Label: label, Prop: prop}]
	if !ok {
		return nil
	}
	set := idx.buckets.bucket(value.Key(v))
	ids := make([]NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IndexAvgBucket estimates how many nodes an equality seek on the
// (label, prop) index returns: total entries over distinct keys, O(1).
// It returns 0 for an empty index and -1 when no index exists.
func (g *Graph) IndexAvgBucket(label, prop string) float64 {
	idx, ok := g.indexes[IndexKey{Label: label, Prop: prop}]
	if !ok {
		return -1
	}
	if idx.buckets.keys == 0 {
		return 0
	}
	return float64(idx.entries) / float64(idx.buckets.keys)
}

// ---------------------------------------------------------------------
// Maintenance hooks (called from every mutation path)
// ---------------------------------------------------------------------

// indexNode adds (add=true) or removes a node's entries in every index
// covering one of its labels. Called when the node appears
// (CreateNode, restoreNode) or disappears (removeNodeInternal, which
// also serves the unchecked legacy deletion).
func (g *Graph) indexNode(n *Node, add bool) {
	if len(g.indexes) == 0 {
		return
	}
	for l := range n.Labels {
		g.indexNodeLabel(n, l, add)
	}
}

// indexNodeLabel adds or removes the node's entries in every index on
// one label, for the properties the node actually stores. Called when
// the node gains or loses the label.
func (g *Graph) indexNodeLabel(n *Node, label string, add bool) {
	if len(g.indexes) == 0 {
		return
	}
	for key, idx := range g.indexes {
		if key.Label != label {
			continue
		}
		v, ok := n.Props[key.Prop]
		if !ok {
			continue
		}
		if add {
			idx.add(g.tag, n.ID, v)
		} else {
			idx.remove(g.tag, n.ID, v)
		}
	}
}

// indexPropWrite records a property transition old→new on node n in
// every index on (one of n's labels, prop). had/has mark whether the
// property existed before/after (SET to null removes it). Called by
// SetNodeProp and the journal's property undo.
func (g *Graph) indexPropWrite(n *Node, prop string, old value.Value, had bool, new value.Value, has bool) {
	if len(g.indexes) == 0 {
		return
	}
	for l := range n.Labels {
		idx, ok := g.indexes[IndexKey{Label: l, Prop: prop}]
		if !ok {
			continue
		}
		if had {
			idx.remove(g.tag, n.ID, old)
		}
		if has {
			idx.add(g.tag, n.ID, new)
		}
	}
}

// ---------------------------------------------------------------------
// Journal undo entries for the schema operations
// ---------------------------------------------------------------------

type undoCreateIndex struct{ key IndexKey }

func (u undoCreateIndex) undo(g *Graph) { g.removeIndex(u.key) }

// undoDropIndex rebuilds the dropped index by rescanning the label.
// Undo entries replay in reverse order, so by the time this runs every
// data mutation recorded after the DROP has been rolled back — the
// rescan reproduces exactly the index as it stood before the drop.
type undoDropIndex struct{ key IndexKey }

func (u undoDropIndex) undo(g *Graph) { g.buildIndex(u.key) }
