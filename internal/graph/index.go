package graph

// Property indexes maintained incrementally under mutation.
//
// A property index is a hash index on a (label, property) pair: it maps
// canonical value keys (value.Key, under which Cypher-equivalent values
// — e.g. 1 and 1.0 — share a key) to the set of nodes that carry the
// label and store that value under the property. The match planner
// (internal/match) turns pushed `n.prop = <expr>` conjuncts and inline
// property maps into index seeks, so an equality-anchored MATCH or a
// bulk MERGE touches one bucket instead of scanning the label.
//
// Because the source paper is about updates, the index — like the
// planner statistics in stats.go — must stay correct while every
// mutation path runs: CreateNode/SetNodeProp/AddLabel/RemoveLabel,
// checked/unchecked/detach deletion, journal rollback (statement- and
// transaction-level), ChangeSet application, codec decode and Clone.
// Each of those paths calls one of the index* hooks below; the
// invariant "index contents == full rescan" is exercised by a
// property-style test over random mutation/rollback sequences
// (index_test.go, the sibling of stats_test.go).
//
// Seek soundness: an index seek enumerates the bucket of the sought
// value's key and still runs the full per-candidate checks
// (labels, inline property maps, pushed predicates). Key equality is
// value equivalence, which is implied by Cypher ternary equality being
// True, so the bucket is a superset of the true matches and the
// post-checks never lose a row; candidates come back in ascending node
// id, a subset of the label scan's order, so result order is unchanged.

import (
	"sort"

	"repro/internal/value"
)

// IndexKey identifies a property index by node label and property name.
type IndexKey struct {
	Label string
	Prop  string
}

// propIndex is the hash index for one (label, property) pair: canonical
// value keys to node-id sets. entries counts (node, value) pairs so the
// planner can estimate the average bucket size in O(1).
type propIndex struct {
	buckets map[string]map[NodeID]struct{}
	entries int
}

func newPropIndex() *propIndex {
	return &propIndex{buckets: make(map[string]map[NodeID]struct{})}
}

func (x *propIndex) add(id NodeID, v value.Value) {
	k := value.Key(v)
	set, ok := x.buckets[k]
	if !ok {
		set = make(map[NodeID]struct{})
		x.buckets[k] = set
	}
	if _, dup := set[id]; !dup {
		set[id] = struct{}{}
		x.entries++
	}
}

func (x *propIndex) remove(id NodeID, v value.Value) {
	k := value.Key(v)
	set, ok := x.buckets[k]
	if !ok {
		return
	}
	if _, had := set[id]; !had {
		return
	}
	delete(set, id)
	x.entries--
	if len(set) == 0 {
		delete(x.buckets, k)
	}
}

func (x *propIndex) clone() *propIndex {
	c := &propIndex{buckets: make(map[string]map[NodeID]struct{}, len(x.buckets)), entries: x.entries}
	for k, set := range x.buckets {
		ns := make(map[NodeID]struct{}, len(set))
		for id := range set {
			ns[id] = struct{}{}
		}
		c.buckets[k] = ns
	}
	return c
}

// CreateIndex creates a property index on (label, prop), populating it
// from the current graph contents. Creating an index that already
// exists is a no-op; the return value reports whether a new index was
// built. The creation is journaled: rolling back the enclosing
// statement or transaction drops the index again.
func (g *Graph) CreateIndex(label, prop string) bool {
	key := IndexKey{Label: label, Prop: prop}
	if _, exists := g.indexes[key]; exists {
		return false
	}
	g.buildIndex(key)
	if g.journal != nil {
		g.journal.record(undoCreateIndex{key: key})
	}
	return true
}

// buildIndex constructs and installs the index for key from a scan of
// the label, without journaling (shared by CreateIndex and the
// DROP INDEX undo path).
func (g *Graph) buildIndex(key IndexKey) {
	idx := newPropIndex()
	for id := range g.byLabel[key.Label] {
		if v, ok := g.nodes[id].Props[key.Prop]; ok {
			idx.add(id, v)
		}
	}
	if g.indexes == nil {
		g.indexes = make(map[IndexKey]*propIndex)
	}
	g.indexes[key] = idx
	g.version++
	g.indexEpoch++
}

// DropIndex removes the property index on (label, prop), reporting
// whether one existed. The drop is journaled: rolling back the
// enclosing statement or transaction rebuilds the index.
func (g *Graph) DropIndex(label, prop string) bool {
	key := IndexKey{Label: label, Prop: prop}
	if _, exists := g.indexes[key]; !exists {
		return false
	}
	g.removeIndex(key)
	if g.journal != nil {
		g.journal.record(undoDropIndex{key: key})
	}
	return true
}

// removeIndex uninstalls the index for key without journaling (shared
// by DropIndex and the CREATE INDEX undo path).
func (g *Graph) removeIndex(key IndexKey) {
	delete(g.indexes, key)
	g.version++
	g.indexEpoch++
}

// HasIndex reports whether a property index exists on (label, prop).
func (g *Graph) HasIndex(label, prop string) bool {
	_, ok := g.indexes[IndexKey{Label: label, Prop: prop}]
	return ok
}

// Indexes lists the graph's property indexes sorted by label, then
// property.
func (g *Graph) Indexes() []IndexKey {
	out := make([]IndexKey, 0, len(g.indexes))
	for k := range g.indexes {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Prop < out[j].Prop
	})
	return out
}

// IndexEpoch reports a counter bumped by every CreateIndex/DropIndex
// (including their rollbacks). The match planner keys its plan cache on
// it so index creation and drop invalidate cached plans immediately.
func (g *Graph) IndexEpoch() int64 { return g.indexEpoch }

// NodeIDsByProp returns, in ascending order, the ids of nodes carrying
// the label whose stored property equals v under value equivalence —
// one bucket of the (label, prop) index. It returns nil when no such
// index exists; callers gate on HasIndex.
func (g *Graph) NodeIDsByProp(label, prop string, v value.Value) []NodeID {
	idx, ok := g.indexes[IndexKey{Label: label, Prop: prop}]
	if !ok {
		return nil
	}
	set := idx.buckets[value.Key(v)]
	ids := make([]NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IndexAvgBucket estimates how many nodes an equality seek on the
// (label, prop) index returns: total entries over distinct keys, O(1).
// It returns 0 for an empty index and -1 when no index exists.
func (g *Graph) IndexAvgBucket(label, prop string) float64 {
	idx, ok := g.indexes[IndexKey{Label: label, Prop: prop}]
	if !ok {
		return -1
	}
	if len(idx.buckets) == 0 {
		return 0
	}
	return float64(idx.entries) / float64(len(idx.buckets))
}

// ---------------------------------------------------------------------
// Maintenance hooks (called from every mutation path)
// ---------------------------------------------------------------------

// indexNode adds (add=true) or removes a node's entries in every index
// covering one of its labels. Called when the node appears
// (CreateNode, restoreNode) or disappears (removeNodeInternal, which
// also serves the unchecked legacy deletion).
func (g *Graph) indexNode(n *Node, add bool) {
	if len(g.indexes) == 0 {
		return
	}
	for l := range n.Labels {
		g.indexNodeLabel(n, l, add)
	}
}

// indexNodeLabel adds or removes the node's entries in every index on
// one label, for the properties the node actually stores. Called when
// the node gains or loses the label.
func (g *Graph) indexNodeLabel(n *Node, label string, add bool) {
	if len(g.indexes) == 0 {
		return
	}
	for key, idx := range g.indexes {
		if key.Label != label {
			continue
		}
		v, ok := n.Props[key.Prop]
		if !ok {
			continue
		}
		if add {
			idx.add(n.ID, v)
		} else {
			idx.remove(n.ID, v)
		}
	}
}

// indexPropWrite records a property transition old→new on node n in
// every index on (one of n's labels, prop). had/has mark whether the
// property existed before/after (SET to null removes it). Called by
// SetNodeProp and the journal's property undo.
func (g *Graph) indexPropWrite(n *Node, prop string, old value.Value, had bool, new value.Value, has bool) {
	if len(g.indexes) == 0 {
		return
	}
	for l := range n.Labels {
		idx, ok := g.indexes[IndexKey{Label: l, Prop: prop}]
		if !ok {
			continue
		}
		if had {
			idx.remove(n.ID, old)
		}
		if has {
			idx.add(n.ID, new)
		}
	}
}

// cloneIndexes deep-copies the index set for Graph.Clone.
func cloneIndexes(in map[IndexKey]*propIndex) map[IndexKey]*propIndex {
	if len(in) == 0 {
		return nil
	}
	out := make(map[IndexKey]*propIndex, len(in))
	for k, idx := range in {
		out[k] = idx.clone()
	}
	return out
}

// ---------------------------------------------------------------------
// Journal undo entries for the schema operations
// ---------------------------------------------------------------------

type undoCreateIndex struct{ key IndexKey }

func (u undoCreateIndex) undo(g *Graph) { g.removeIndex(u.key) }

// undoDropIndex rebuilds the dropped index by rescanning the label.
// Undo entries replay in reverse order, so by the time this runs every
// data mutation recorded after the DROP has been rolled back — the
// rescan reproduces exactly the index as it stood before the drop.
type undoDropIndex struct{ key IndexKey }

func (u undoDropIndex) undo(g *Graph) { g.buildIndex(u.key) }
