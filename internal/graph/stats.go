package graph

// Graph statistics maintained incrementally under mutation.
//
// The match planner (internal/match) picks scan anchors and orders
// pattern parts by cardinality estimates; because the source paper is
// about updates, those estimates must stay correct while CREATE, DELETE,
// SET, REMOVE and statement rollback mutate the graph. Rather than
// recounting, every mutation entry point of the store adjusts a set of
// counters, so all reads here are O(1):
//
//   - nodes per label (derived from the label index, which is already
//     maintained incrementally);
//   - relationships per type;
//   - relationship endpoints per (endpoint label, relationship type) and
//     per endpoint label — the "degree sums" from which average out/in
//     degrees are computed.
//
// The degree counters follow the convention of the from-scratch recount
// in ComputeStats: a relationship contributes to out-degree counters
// once per label of its source node and to in-degree counters once per
// label of its target node, counting only endpoints that currently
// exist. Legacy Cypher 9 DELETE may leave relationships dangling
// mid-statement (Section 4.2 of the paper); a dangling endpoint simply
// stops contributing until the node is restored.
//
// The invariant "counters == ComputeStats(g)" is exercised by a
// property-style test over random mutation/rollback sequences
// (stats_test.go).

// LabelType keys degree counters by endpoint label and relationship type.
type LabelType struct {
	Label string
	Type  string
}

// statsCounters holds the incrementally maintained counters. Maps are
// allocated lazily and entries are deleted when they reach zero, so two
// graphs with equal content have equal (canonical) counters.
type statsCounters struct {
	relType  map[string]int    // relationships per type
	out      map[LabelType]int // rels of Type whose source carries Label
	in       map[LabelType]int // rels of Type whose target carries Label
	outLabel map[string]int    // rels (any type) whose source carries Label
	inLabel  map[string]int    // rels (any type) whose target carries Label
}

func bump[K comparable](m map[K]int, k K, delta int) map[K]int {
	if m == nil {
		m = make(map[K]int)
	}
	n := m[k] + delta
	if n == 0 {
		delete(m, k)
	} else {
		m[k] = n
	}
	return m
}

// statsRel adjusts the counters for relationship r by delta (+1 on
// create/restore, -1 on delete). Endpoint label contributions are
// counted only for endpoints that currently exist; restoreNode and
// removeNodeInternal account for the missing side.
func (g *Graph) statsRel(r *Rel, delta int) {
	g.version++
	g.stats.relType = bump(g.stats.relType, r.Type, delta)
	if src := g.Node(r.Src); src != nil {
		for l := range src.Labels {
			g.stats.out = bump(g.stats.out, LabelType{l, r.Type}, delta)
			g.stats.outLabel = bump(g.stats.outLabel, l, delta)
		}
	}
	if tgt := g.Node(r.Tgt); tgt != nil {
		for l := range tgt.Labels {
			g.stats.in = bump(g.stats.in, LabelType{l, r.Type}, delta)
			g.stats.inLabel = bump(g.stats.inLabel, l, delta)
		}
	}
}

// statsNodeRels adjusts the degree contribution of node n's labels
// across its attached, still-existing relationships. Called when a node
// appears (restore) or disappears (removal, including the unchecked
// legacy deletion that leaves relationships dangling).
func (g *Graph) statsNodeRels(n *Node, delta int) {
	for _, rid := range g.Outgoing(n.ID) {
		r := g.Rel(rid)
		if r == nil {
			continue
		}
		for l := range n.Labels {
			g.stats.out = bump(g.stats.out, LabelType{l, r.Type}, delta)
			g.stats.outLabel = bump(g.stats.outLabel, l, delta)
		}
	}
	for _, rid := range g.Incoming(n.ID) {
		r := g.Rel(rid)
		if r == nil {
			continue
		}
		for l := range n.Labels {
			g.stats.in = bump(g.stats.in, LabelType{l, r.Type}, delta)
			g.stats.inLabel = bump(g.stats.inLabel, l, delta)
		}
	}
}

// statsLabel adjusts the degree contribution of one label gained
// (delta=+1) or lost (delta=-1) by node id, across its attached,
// still-existing relationships.
func (g *Graph) statsLabel(id NodeID, label string, delta int) {
	g.version++
	for _, rid := range g.Outgoing(id) {
		if r := g.Rel(rid); r != nil {
			g.stats.out = bump(g.stats.out, LabelType{label, r.Type}, delta)
			g.stats.outLabel = bump(g.stats.outLabel, label, delta)
		}
	}
	for _, rid := range g.Incoming(id) {
		if r := g.Rel(rid); r != nil {
			g.stats.in = bump(g.stats.in, LabelType{label, r.Type}, delta)
			g.stats.inLabel = bump(g.stats.inLabel, label, delta)
		}
	}
}

func (s statsCounters) clone() statsCounters {
	cp := func(m map[string]int) map[string]int {
		if len(m) == 0 {
			return nil
		}
		out := make(map[string]int, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	c := statsCounters{relType: cp(s.relType), outLabel: cp(s.outLabel), inLabel: cp(s.inLabel)}
	if len(s.out) > 0 {
		c.out = make(map[LabelType]int, len(s.out))
		for k, v := range s.out {
			c.out[k] = v
		}
	}
	if len(s.in) > 0 {
		c.in = make(map[LabelType]int, len(s.in))
		for k, v := range s.in {
			c.in[k] = v
		}
	}
	return c
}

// ---------------------------------------------------------------------
// O(1) read API (the planner's cost-model inputs)
// ---------------------------------------------------------------------

// NodeCountByLabel reports the number of nodes carrying the label, O(1).
func (g *Graph) NodeCountByLabel(label string) int {
	if set := g.byLabel[label]; set != nil {
		return set.size()
	}
	return 0
}

// RelCountByType reports the number of relationships of the type, O(1).
func (g *Graph) RelCountByType(relType string) int { return g.stats.relType[relType] }

// OutRelCount reports how many relationships of relType have a source
// node carrying label; relType "" means any type. O(1).
func (g *Graph) OutRelCount(label, relType string) int {
	if relType == "" {
		return g.stats.outLabel[label]
	}
	return g.stats.out[LabelType{label, relType}]
}

// InRelCount reports how many relationships of relType have a target
// node carrying label; relType "" means any type. O(1).
func (g *Graph) InRelCount(label, relType string) int {
	if relType == "" {
		return g.stats.inLabel[label]
	}
	return g.stats.in[LabelType{label, relType}]
}

// AvgOutDegree estimates the average number of relType relationships
// leaving a node with the given label ("" label means any node, ""
// relType means any type). O(1).
func (g *Graph) AvgOutDegree(label, relType string) float64 {
	return avgDegree(g.degreeCount(label, relType, true), g.nodeBase(label))
}

// AvgInDegree estimates the average number of relType relationships
// entering a node with the given label. O(1).
func (g *Graph) AvgInDegree(label, relType string) float64 {
	return avgDegree(g.degreeCount(label, relType, false), g.nodeBase(label))
}

func (g *Graph) degreeCount(label, relType string, out bool) int {
	if label == "" {
		if relType == "" {
			return g.rels.size()
		}
		return g.stats.relType[relType]
	}
	if out {
		return g.OutRelCount(label, relType)
	}
	return g.InRelCount(label, relType)
}

func (g *Graph) nodeBase(label string) int {
	if label == "" {
		return g.nodes.size()
	}
	return g.NodeCountByLabel(label)
}

func avgDegree(rels, nodes int) float64 {
	if nodes == 0 {
		return 0
	}
	return float64(rels) / float64(nodes)
}

// Stats returns a snapshot of the incrementally maintained statistics.
// It is equal to ComputeStats(g) at all times (the invariant the
// property tests check), but is assembled from O(1) counters rather
// than a full recount.
func (g *Graph) Stats() Stats {
	s := Stats{
		Nodes:    g.nodes.size(),
		Rels:     g.rels.size(),
		Labels:   make(map[string]int, len(g.byLabel)),
		RelTypes: make(map[string]int, len(g.stats.relType)),
		OutDeg:   make(map[LabelType]int, len(g.stats.out)),
		InDeg:    make(map[LabelType]int, len(g.stats.in)),
	}
	for l, set := range g.byLabel {
		s.Labels[l] = set.size()
	}
	for t, c := range g.stats.relType {
		s.RelTypes[t] = c
	}
	for k, c := range g.stats.out {
		s.OutDeg[k] = c
	}
	for k, c := range g.stats.in {
		s.InDeg[k] = c
	}
	return s
}
