package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/value"
)

// graphsEqual asserts two graphs hold identical content: same entities
// under the same ids with equal labels/properties, same adjacency, same
// label index, same schema, same statistics, same id counters. This is
// strict equality (not isomorphism): the three commit paths must agree
// bit-for-bit on observable state.
func graphsEqual(t *testing.T, a, b *Graph, ctx string) {
	t.Helper()
	if got, want := a.NodeIDs(), b.NodeIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: node ids %v vs %v", ctx, got, want)
	}
	for _, id := range a.NodeIDs() {
		na, nb := a.Node(id), b.Node(id)
		if !reflect.DeepEqual(na.Labels, nb.Labels) {
			t.Fatalf("%s: node %d labels %v vs %v", ctx, id, na.Labels, nb.Labels)
		}
		if !reflect.DeepEqual(na.Props, nb.Props) {
			t.Fatalf("%s: node %d props %v vs %v", ctx, id, na.Props, nb.Props)
		}
		if !relIDsEqual(a.Outgoing(id), b.Outgoing(id)) {
			t.Fatalf("%s: node %d outgoing %v vs %v", ctx, id, a.Outgoing(id), b.Outgoing(id))
		}
		if !relIDsEqual(a.Incoming(id), b.Incoming(id)) {
			t.Fatalf("%s: node %d incoming %v vs %v", ctx, id, a.Incoming(id), b.Incoming(id))
		}
	}
	if got, want := a.RelIDs(), b.RelIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: rel ids %v vs %v", ctx, got, want)
	}
	for _, id := range a.RelIDs() {
		ra, rb := a.Rel(id), b.Rel(id)
		if ra.Type != rb.Type || ra.Src != rb.Src || ra.Tgt != rb.Tgt {
			t.Fatalf("%s: rel %d shape (%s %d->%d) vs (%s %d->%d)",
				ctx, id, ra.Type, ra.Src, ra.Tgt, rb.Type, rb.Src, rb.Tgt)
		}
		if !reflect.DeepEqual(ra.Props, rb.Props) {
			t.Fatalf("%s: rel %d props %v vs %v", ctx, id, ra.Props, rb.Props)
		}
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("%s: stats %+v vs %+v", ctx, a.Stats(), b.Stats())
	}
	if !reflect.DeepEqual(a.Indexes(), b.Indexes()) {
		t.Fatalf("%s: index sets %v vs %v", ctx, a.Indexes(), b.Indexes())
	}
	if a.nextNode != b.nextNode || a.nextRel != b.nextRel {
		t.Fatalf("%s: id counters (%d,%d) vs (%d,%d)", ctx, a.nextNode, a.nextRel, b.nextNode, b.nextRel)
	}
}

// relIDsEqual compares adjacency lists element-wise, treating nil and
// empty as equal (a copied-then-emptied row and a never-present row are
// the same observable state).
func relIDsEqual(a, b []RelID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkGraphInvariants asserts the incrementally maintained structures
// of one graph agree with a from-scratch recount.
func checkGraphInvariants(t *testing.T, g *Graph, ctx string) {
	t.Helper()
	want := ComputeStats(g)
	got := g.Stats()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: incremental stats %+v, recount %+v", ctx, got, want)
	}
	checkIndexes(t, g, ctx)
}

// cowTestOps returns the operation generator shared by the equivalence
// test: each call decides one mutation using rng and the probe graph's
// current state, then applies the identical mutation to every target.
// Because all targets hold identical content and identical id counters,
// created ids and error outcomes match across them by construction.
func cowTestOps(t *testing.T, rng *rand.Rand, probe func() *Graph, targets func() []*Graph) func() {
	t.Helper()
	labels := []string{"A", "B", "C"}
	props := []string{"p", "q"}
	randomValue := func() value.Value {
		switch rng.Intn(4) {
		case 0:
			return value.Int(int64(rng.Intn(4)))
		case 1:
			return value.Float(float64(rng.Intn(4)))
		case 2:
			return value.String("s")
		default:
			return value.NullValue
		}
	}
	pickNode := func() (NodeID, bool) {
		ids := probe().NodeIDs()
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	pickRel := func() (RelID, bool) {
		ids := probe().RelIDs()
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	return func() {
		switch rng.Intn(14) {
		case 0, 1, 2:
			var ls []string
			for _, l := range labels {
				if rng.Intn(2) == 0 {
					ls = append(ls, l)
				}
			}
			pm := value.Map{}
			if rng.Intn(2) == 0 {
				pm["p"] = randomValue()
			}
			for _, g := range targets() {
				g.CreateNode(ls, pm)
			}
		case 3, 4:
			a, ok1 := pickNode()
			b, ok2 := pickNode()
			if ok1 && ok2 {
				pm := value.Map{"w": randomValue()}
				for _, g := range targets() {
					if _, err := g.CreateRel(a, b, "R", pm); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 5:
			if id, ok := pickRel(); ok {
				for _, g := range targets() {
					g.DeleteRel(id)
				}
			}
		case 6:
			if id, ok := pickNode(); ok {
				for _, g := range targets() {
					g.DetachDeleteNode(id)
				}
			}
		case 7:
			// Checked delete: errors (still-attached relationships) must
			// agree across targets — same state, same outcome.
			if id, ok := pickNode(); ok {
				var errs []error
				for _, g := range targets() {
					errs = append(errs, g.DeleteNode(id))
				}
				for _, e := range errs[1:] {
					if (e == nil) != (errs[0] == nil) {
						t.Fatalf("DeleteNode(%d) outcomes diverged: %v vs %v", id, errs[0], e)
					}
				}
			}
		case 8, 9:
			if id, ok := pickNode(); ok {
				k, v := props[rng.Intn(len(props))], randomValue()
				for _, g := range targets() {
					if err := g.SetNodeProp(id, k, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 10:
			if id, ok := pickRel(); ok {
				v := randomValue()
				for _, g := range targets() {
					if err := g.SetRelProp(id, "w", v); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 11:
			if id, ok := pickNode(); ok {
				l := labels[rng.Intn(len(labels))]
				for _, g := range targets() {
					if err := g.AddLabel(id, l); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 12:
			if id, ok := pickNode(); ok {
				l := labels[rng.Intn(len(labels))]
				for _, g := range targets() {
					if err := g.RemoveLabel(id, l); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 13:
			l, p := labels[rng.Intn(len(labels))], props[rng.Intn(len(props))]
			if rng.Intn(2) == 0 {
				for _, g := range targets() {
					g.CreateIndex(l, p)
				}
			} else {
				for _, g := range targets() {
					g.DropIndex(l, p)
				}
			}
		}
	}
}

// TestCommitPathsEquivalent is the acceptance property test for the
// copy-on-write commit pipeline: the in-place path (no pinned readers),
// the copy-on-write path (reader pinned for the whole transaction) and
// a deep-clone-per-transaction reference must produce identical
// published graphs across random sequences of mutations, schema
// operations, statement-level rollbacks (journal marks) and whole-
// transaction rollbacks. A concurrent reader iterates the pinned
// snapshot throughout, so `-race` verifies the copy-on-write writer
// never touches structure a reader can see.
func TestCommitPathsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			inPlaceStore := NewStore(New())
			cowStore := NewStore(New())
			ref := New() // deep-clone commit reference

			for txn := 0; txn < 30; txn++ {
				ctx := fmt.Sprintf("seed=%d txn=%d", seed, txn)

				// Pin the COW store's snapshot: its writer must clone.
				pin := cowStore.Acquire()
				preNodes := pin.Graph().NumNodes()
				preVersion := pin.Graph().Version()
				preIdxEpoch := pin.Graph().IndexEpoch()

				wIn := inPlaceStore.BeginWrite()
				if wIn.cloned {
					t.Fatal("in-place store writer cloned with no pinned readers")
				}
				wCow := cowStore.BeginWrite()
				if !wCow.cloned {
					t.Fatal("COW store writer did not clone despite a pinned reader")
				}
				refWork := ref.Clone()
				refJ := refWork.BeginJournal()

				// A concurrent reader hammers the pinned snapshot while
				// the COW writer mutates its clone.
				stop := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, id := range pin.Graph().NodeIDs() {
							_ = pin.Graph().Node(id).SortedLabels()
							_ = pin.Graph().Outgoing(id)
						}
						_ = pin.Graph().Stats()
					}
				}()

				targets := []*Graph{wIn.Graph(), wCow.Graph(), refWork}
				op := cowTestOps(t, rng,
					func() *Graph { return wIn.Graph() },
					func() []*Graph { return targets })

				nOps := 1 + rng.Intn(8)
				useMark := rng.Intn(3) == 0
				var marks []int
				for i := 0; i < nOps; i++ {
					if useMark && i == nOps/2 {
						marks = []int{wIn.Journal().Mark(), wCow.Journal().Mark(), refJ.Mark()}
					}
					op()
				}
				if marks != nil {
					// Statement-level rollback inside the transaction.
					wIn.Journal().RollbackTo(marks[0])
					wCow.Journal().RollbackTo(marks[1])
					refJ.RollbackTo(marks[2])
				}

				rollback := rng.Intn(4) == 0
				if rollback {
					wIn.Rollback()
					wCow.Rollback()
					// Deep-clone reference: discard the working copy,
					// keep the consumed id counters (the historical
					// rollback contract).
					refJ.Discard()
					ref.nextNode, ref.nextRel = refWork.nextNode, refWork.nextRel
				} else {
					wIn.Commit()
					wCow.Commit()
					refJ.Commit()
					ref = refWork
				}

				close(stop)
				<-done
				// The pinned snapshot never observed the transaction.
				if got := pin.Graph().NumNodes(); got != preNodes {
					t.Fatalf("%s: pinned snapshot node count moved %d -> %d", ctx, preNodes, got)
				}
				pin.Release()

				snapIn := inPlaceStore.Acquire()
				snapCow := cowStore.Acquire()
				graphsEqual(t, snapIn.Graph(), snapCow.Graph(), ctx+" in-place vs cow")
				graphsEqual(t, snapIn.Graph(), ref, ctx+" in-place vs deep-clone")
				checkGraphInvariants(t, snapCow.Graph(), ctx+" cow invariants")
				if rollback {
					// Satellite regression: a rolled-back COW transaction
					// must not disturb the cache-relevant counters.
					if snapCow.Graph().Version() != preVersion {
						t.Fatalf("%s: rolled-back COW txn moved Version %d -> %d",
							ctx, preVersion, snapCow.Graph().Version())
					}
					if snapCow.Graph().IndexEpoch() != preIdxEpoch {
						t.Fatalf("%s: rolled-back COW txn moved IndexEpoch", ctx)
					}
				}
				snapIn.Release()
				snapCow.Release()
			}
		})
	}
}

// TestCloneCOWSharesUntouchedStructure pins the O(changes) claim at the
// container level: after a 1-node write transaction on a COW clone, the
// untouched shards of the published base are the very same objects in
// the committed graph (shared, not copied), while the touched shard was
// replaced.
func TestCloneCOWSharesUntouchedStructure(t *testing.T) {
	g := New()
	for i := 0; i < 4*(1<<shardBits); i++ {
		g.CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))})
	}
	s := NewStore(g)
	pin := s.Acquire()
	defer pin.Release()

	w := s.BeginWrite()
	if !w.cloned {
		t.Fatal("expected the COW path")
	}
	clone := w.Graph()
	// Directory copied, shards shared.
	for si := range g.nodes.shards {
		if clone.nodes.shards[si] != g.nodes.shards[si] {
			t.Fatalf("node shard %d was copied before any write", si)
		}
	}
	clone.CreateNode([]string{"N"}, nil) // touches only the last shard
	touched := int(clone.nextNode >> shardBits)
	copied := 0
	for si := range g.nodes.shards {
		if si < len(clone.nodes.shards) && clone.nodes.shards[si] != g.nodes.shards[si] {
			copied++
			if si != touched {
				t.Fatalf("write to shard %d copied unrelated shard %d", touched, si)
			}
		}
	}
	if copied > 1 {
		t.Fatalf("1-node write copied %d shards", copied)
	}
	w.Commit()
}

// TestInPlaceWriterRespectsOlderEpochSharing: after a COW commit, the
// published graph shares buckets with the older, still-pinned epoch. A
// subsequent in-place writer (no pins on the current epoch) must copy
// those shared buckets rather than mutate them under the old reader.
func TestInPlaceWriterRespectsOlderEpochSharing(t *testing.T) {
	g := New()
	n := g.CreateNode([]string{"N"}, value.Map{"v": value.Int(1)})
	s := NewStore(g)

	oldPin := s.Acquire() // pins epoch 0
	w := s.BeginWrite()   // COW path
	if !w.cloned {
		t.Fatal("expected COW")
	}
	w.Graph().CreateNode([]string{"N"}, nil)
	w.Commit() // epoch 1 shares node 1's shard with epoch 0

	// No pins on epoch 1: the next writer goes in place on the epoch-1
	// graph — and must not corrupt epoch 0's view of node 1.
	w2 := s.BeginWrite()
	if w2.cloned {
		t.Fatal("expected the in-place path")
	}
	if err := w2.Graph().SetNodeProp(n.ID, "v", value.Int(99)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Graph().AddLabel(n.ID, "X"); err != nil {
		t.Fatal(err)
	}
	w2.Commit()

	if got := oldPin.Graph().Node(n.ID).Props["v"]; got != value.Int(1) {
		t.Fatalf("old epoch saw in-place write: v = %v", got)
	}
	if oldPin.Graph().Node(n.ID).HasLabel("X") {
		t.Fatal("old epoch saw in-place label write")
	}
	if len(oldPin.Graph().NodeIDsByLabel("X")) != 0 {
		t.Fatal("old epoch's label index saw in-place write")
	}
	oldPin.Release()

	cur := s.Acquire()
	defer cur.Release()
	if got := cur.Graph().Node(n.ID).Props["v"]; got != value.Int(99) {
		t.Fatalf("current epoch lost the write: v = %v", got)
	}
}
