package graph

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/value"
)

func TestStickyFailure(t *testing.T) {
	// Enough budget for the header and the first commit, not the
	// second. After the first failure every later operation must return
	// the same error: no valid record may ever follow a torn one.
	dir := t.TempDir()
	inj := &faultInjector{budget: 64}
	st, wal, err := recoverFS(dir, Durability{Sync: SyncNever}, faultFS{in: inj})
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("budget never exhausted")
		}
		w := st.BeginWrite()
		w.Graph().CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))})
		if _, err := w.Commit(); err != nil {
			firstErr = err
			break
		}
	}
	w := st.BeginWrite()
	w.Graph().CreateNode([]string{"After"}, nil)
	if _, err := w.Commit(); err == nil || err.Error() != firstErr.Error() {
		t.Fatalf("poisoned WAL accepted a commit: err = %v, want sticky %v", err, firstErr)
	}
	if err := st.Checkpoint(); err == nil {
		t.Fatal("poisoned WAL accepted a checkpoint")
	}
	if status := wal.Status(); status.Err == nil {
		t.Fatal("status does not report the failure")
	}
	if err := wal.Close(); err == nil {
		t.Fatal("Close on a poisoned WAL reported success")
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing write must leave the existing file untouched and no
	// temporary files behind.
	err := AtomicWriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return fmt.Errorf("disk full")
	})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error not surfaced: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("original file clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.json" {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestOnCommitPanicContainment(t *testing.T) {
	// A panicking subscriber must not corrupt the store: remaining
	// hooks still run, the commit stays published, the writer baton is
	// released, and the panic reaches the committing goroutine.
	st := NewStore(New())
	secondRan := false
	st.OnCommit(func(*Delta) { panic("subscriber bug") })
	st.OnCommit(func(*Delta) { secondRan = true })

	w := st.BeginWrite()
	w.Graph().CreateNode([]string{"A"}, nil)
	func() {
		defer func() {
			if r := recover(); r != "subscriber bug" {
				t.Fatalf("panic not propagated: %v", r)
			}
		}()
		w.Commit()
		t.Fatal("commit did not panic")
	}()

	if !secondRan {
		t.Fatal("second hook skipped after first panicked")
	}
	snap := st.Acquire()
	if snap.Graph().NumNodes() != 1 {
		t.Fatal("panicking hook unpublished the commit")
	}
	snap.Release()

	// The baton must be free: a plain follow-up commit (hooks will
	// panic again, so recover) succeeds and publishes.
	w = st.BeginWrite()
	w.Graph().CreateNode([]string{"B"}, nil)
	func() {
		defer func() { recover() }()
		w.Commit()
	}()
	snap = st.Acquire()
	defer snap.Release()
	if snap.Graph().NumNodes() != 2 {
		t.Fatal("store wedged after hook panic")
	}
}

func TestIdenticalDiscriminates(t *testing.T) {
	base := func() *Graph {
		g := New()
		n := g.CreateNode([]string{"A"}, value.Map{"f": value.Float(1), "nan": value.Float(math.NaN())})
		m := g.CreateNode(nil, nil)
		g.CreateRel(n.ID, m.ID, "R", nil)
		g.CreateIndex("A", "f")
		return g
	}
	if err := Identical(base(), base()); err != nil {
		t.Fatalf("identical graphs reported different: %v", err)
	}
	if err := Identical(base(), base().Clone()); err != nil {
		t.Fatalf("clone reported different: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(g *Graph)
	}{
		{"int vs float", func(g *Graph) { g.SetNodeProp(1, "f", value.Int(1)) }},
		{"nan vs number", func(g *Graph) { g.SetNodeProp(1, "nan", value.Float(0)) }},
		{"extra label", func(g *Graph) { g.AddLabel(2, "B") }},
		{"extra node", func(g *Graph) { g.CreateNode(nil, nil) }},
		{"rel gone", func(g *Graph) { g.DeleteRel(1) }},
		{"index gone", func(g *Graph) { g.DropIndex("A", "f") }},
		{"counters", func(g *Graph) { id := g.CreateNode(nil, nil).ID; g.DeleteNode(id) }},
	}
	for _, tc := range cases {
		g := base()
		tc.mutate(g)
		if err := Identical(base(), g); err == nil {
			t.Errorf("%s: difference not detected", tc.name)
		}
	}
	// NaN must equal NaN bit-for-bit.
	if !valueBitIdentical(value.Float(math.NaN()), value.Float(math.NaN())) {
		t.Error("NaN != NaN under bit identity")
	}
	if valueBitIdentical(value.Int(1), value.Float(1)) {
		t.Error("1 == 1.0 under bit identity")
	}
}
