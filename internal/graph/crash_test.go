package graph

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

// The fault-injection harness: a walFS/walFile double with a byte
// budget. Writes pass through to the real file until the budget runs
// out — the last write is cut at the exact byte where the budget ends,
// modelling a process killed mid-write — and every operation after
// that fails. Metadata operations (sync, rename, truncate, create,
// remove, directory sync) each consume one unit, so the kill point can
// also land between any two steps of the checkpoint protocol.

var errInjectedCrash = errors.New("injected crash")

type faultInjector struct {
	mu      sync.Mutex
	budget  int64
	tripped bool
}

// spendBytes consumes up to n bytes of budget and returns how many the
// caller may actually write. Exhausting the budget trips the injector.
func (in *faultInjector) spendBytes(n int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.tripped {
		return 0, errInjectedCrash
	}
	if int64(n) <= in.budget {
		in.budget -= int64(n)
		return n, nil
	}
	allowed := int(in.budget)
	in.budget = 0
	in.tripped = true
	return allowed, errInjectedCrash
}

// spendOp consumes one unit for a metadata operation.
func (in *faultInjector) spendOp() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.tripped || in.budget == 0 {
		in.tripped = true
		return errInjectedCrash
	}
	in.budget--
	return nil
}

func (in *faultInjector) check() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.tripped {
		return errInjectedCrash
	}
	return nil
}

type faultFile struct {
	f  *os.File
	in *faultInjector
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allowed, ierr := ff.in.spendBytes(len(p))
	var n int
	if allowed > 0 {
		var werr error
		n, werr = ff.f.Write(p[:allowed])
		if werr != nil {
			return n, werr
		}
	}
	if ierr != nil {
		return n, ierr
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	if err := ff.in.spendOp(); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.in.spendOp(); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Close() error {
	err := ff.in.check()
	if cerr := ff.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func (ff *faultFile) Name() string { return ff.f.Name() }

type faultFS struct {
	in *faultInjector
}

func (fs faultFS) OpenAppend(path string) (walFile, error) {
	if err := fs.in.check(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o666)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: fs.in}, nil
}

func (fs faultFS) CreateTemp(dir, pattern string) (walFile, error) {
	if err := fs.in.spendOp(); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: fs.in}, nil
}

func (fs faultFS) Rename(oldpath, newpath string) error {
	if err := fs.in.spendOp(); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func (fs faultFS) Remove(path string) error {
	if err := fs.in.spendOp(); err != nil {
		return err
	}
	return os.Remove(path)
}

func (fs faultFS) SyncDir(dir string) error {
	if err := fs.in.spendOp(); err != nil {
		return err
	}
	return osFS{}.SyncDir(dir)
}

// randValue draws a property value, biased toward the awkward cases:
// NaN and infinities (bit-identity, not equality), negative zero,
// empty strings, nested lists.
func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(10) {
	case 0:
		return value.Float(math.NaN())
	case 1:
		return value.Float(math.Inf(1 - 2*rng.Intn(2)))
	case 2:
		return value.Float(math.Copysign(0, -1))
	case 3:
		return value.Int(rng.Int63n(1000) - 500)
	case 4:
		return value.String("")
	case 5:
		return value.String(fmt.Sprintf("s%d", rng.Intn(100)))
	case 6:
		return value.Bool(rng.Intn(2) == 0)
	case 7:
		return value.NullValue
	case 8:
		return value.List{value.Int(1), value.Float(math.NaN()), value.String("x")}
	default:
		return value.Float(rng.NormFloat64())
	}
}

var crashLabels = []string{"A", "B", "C"}
var crashKeys = []string{"k", "name", "w"}

// crashWorkload runs one randomized transaction on w: a handful of
// creates, deletes, property writes, label flips, index changes, and
// occasionally a statement-level journal rollback in the middle.
func crashWorkload(rng *rand.Rand, w *WriteTxn) {
	g := w.Graph()
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		if rng.Intn(6) == 0 {
			// A mid-transaction statement rollback, like a failing
			// statement inside an open transaction.
			j := w.Journal()
			mark := j.Mark()
			g.CreateNode([]string{"Doomed"}, value.Map{"x": randValue(rng)})
			j.RollbackTo(mark)
			continue
		}
		nodes := g.NodeIDs()
		switch rng.Intn(8) {
		case 0, 1:
			props := value.Map{}
			for k := 0; k < rng.Intn(3); k++ {
				props[crashKeys[rng.Intn(len(crashKeys))]] = randValue(rng)
			}
			var labels []string
			for k := 0; k < rng.Intn(3); k++ {
				labels = append(labels, crashLabels[rng.Intn(len(crashLabels))])
			}
			g.CreateNode(labels, props)
		case 2:
			if len(nodes) >= 2 {
				g.CreateRel(nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))],
					"R"+strconv.Itoa(rng.Intn(2)), value.Map{"w": randValue(rng)})
			}
		case 3:
			if rels := g.RelIDs(); len(rels) > 0 {
				g.DeleteRel(rels[rng.Intn(len(rels))])
			}
		case 4:
			if len(nodes) > 0 {
				g.DetachDeleteNode(nodes[rng.Intn(len(nodes))])
			}
		case 5:
			if len(nodes) > 0 {
				id := nodes[rng.Intn(len(nodes))]
				g.SetNodeProp(id, crashKeys[rng.Intn(len(crashKeys))], randValue(rng))
			}
		case 6:
			if len(nodes) > 0 {
				id := nodes[rng.Intn(len(nodes))]
				l := crashLabels[rng.Intn(len(crashLabels))]
				if rng.Intn(2) == 0 {
					g.AddLabel(id, l)
				} else {
					g.RemoveLabel(id, l)
				}
			}
		default:
			l := crashLabels[rng.Intn(len(crashLabels))]
			k := crashKeys[rng.Intn(len(crashKeys))]
			if rng.Intn(2) == 0 {
				g.CreateIndex(l, k)
			} else {
				g.DropIndex(l, k)
			}
		}
	}
}

// TestKillAtRandomPointRecovery is the durability property test: run a
// random workload against a store whose filesystem is killed at a
// random byte offset, then recover with the real filesystem and check
// the result is bit-identical to the state at some published epoch —
// and, under SyncAlways, at least the last epoch whose Commit returned
// success. CRASH_ITERS overrides the iteration count (the Makefile's
// crash target runs 250 under -race); CRASH_SEED pins the base seed
// for reproduction.
func TestKillAtRandomPointRecovery(t *testing.T) {
	iters := 120
	if s := os.Getenv("CRASH_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CRASH_ITERS: %v", err)
		}
		iters = n
	}
	baseSeed := time.Now().UnixNano()
	if s := os.Getenv("CRASH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CRASH_SEED: %v", err)
		}
		baseSeed = n
	}
	t.Logf("base seed %d (set CRASH_SEED=%d to reproduce)", baseSeed, baseSeed)
	for it := 0; it < iters; it++ {
		seed := baseSeed + int64(it)
		if err := crashIteration(seed); err != nil {
			t.Fatalf("iteration %d (CRASH_SEED=%d CRASH_ITERS=1): %v", it, seed, err)
		}
	}
}

func crashIteration(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	dir, err := os.MkdirTemp("", "crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Log-uniform byte budget: small budgets probe the header and the
	// first record's framing, large ones let checkpoints happen first.
	b := int64(1) << uint(1+rng.Intn(15))
	budget := b + rng.Int63n(b)
	inj := &faultInjector{budget: budget}

	opts := Durability{
		Sync:            SyncMode(rng.Intn(3)),
		SyncEvery:       time.Millisecond,
		CheckpointBytes: []int64{512, 2048, -1}[rng.Intn(3)],
	}

	// expected[e] is the exact graph published at epoch e. Epoch 0 is
	// the empty store. Recovery must land on one of these, bit for bit.
	expected := map[int64]*Graph{0: New()}
	lastDurable := int64(0)

	st, wal, err := recoverFS(dir, opts, faultFS{in: inj})
	if err == nil {
		// A background reader, so -race checks recovery-epoch
		// publication and in-place-vs-clone decisions against
		// concurrent snapshot access.
		stop := make(chan struct{})
		var readers sync.WaitGroup
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Acquire()
				_ = ComputeStats(snap.Graph())
				snap.Release()
			}
		}()

		hookRan := false
		st.OnCommit(func(*Delta) { hookRan = true })

		for txn := 0; txn < 40; txn++ {
			if rng.Intn(12) == 0 {
				st.Checkpoint() // may fail under injection; that's the point
			}
			w := st.BeginWrite()
			crashWorkload(rng, w)
			if rng.Intn(8) == 0 {
				w.Rollback()
				// A rollback publishes an epoch too (consumed ids stay
				// consumed), and a later checkpoint can persist it.
				snap := st.Acquire()
				expected[st.Epoch()] = snap.Graph().Clone()
				snap.Release()
				continue
			}
			clone := w.Graph().Clone()
			hookRan = false
			epoch, err := w.Commit()
			expected[epoch] = clone
			if err != nil {
				break // the injected crash: the process is dead
			}
			if opts.Sync == SyncAlways && hookRan {
				lastDurable = epoch
			}
		}
		close(stop)
		readers.Wait()
		wal.Close()
	}
	// else: the crash landed inside recovery/open itself; the durable
	// state is whatever was already on disk (here: nothing).

	// The next process: recover with the real filesystem.
	st2, wal2, err := Recover(dir, Durability{})
	if err != nil {
		return fmt.Errorf("recovery failed: %v", err)
	}
	re := st2.Epoch()
	want, ok := expected[re]
	if !ok {
		wal2.Close()
		return fmt.Errorf("recovered to epoch %d, which was never published", re)
	}
	if re < lastDurable {
		wal2.Close()
		return fmt.Errorf("recovered to epoch %d but SyncAlways committed through %d", re, lastDurable)
	}
	snap := st2.Acquire()
	cmpErr := Identical(want, snap.Graph())
	snap.Release()
	if cmpErr != nil {
		wal2.Close()
		return fmt.Errorf("recovered epoch %d differs from published epoch %d: %v", re, re, cmpErr)
	}

	// The recovered store must be fully writable: one more commit, one
	// more recovery.
	w := st2.BeginWrite()
	w.Graph().CreateNode([]string{"AfterCrash"}, value.Map{"ok": value.Bool(true)})
	if _, err := w.Commit(); err != nil {
		wal2.Close()
		return fmt.Errorf("commit after recovery: %v", err)
	}
	snap = st2.Acquire()
	want2 := snap.Graph().Clone()
	epoch2 := st2.Epoch()
	snap.Release()
	if err := wal2.Close(); err != nil {
		return fmt.Errorf("close after recovery: %v", err)
	}
	st3, wal3, err := Recover(dir, Durability{})
	if err != nil {
		return fmt.Errorf("second recovery: %v", err)
	}
	defer wal3.Close()
	if st3.Epoch() != epoch2 {
		return fmt.Errorf("second recovery epoch %d, want %d", st3.Epoch(), epoch2)
	}
	snap = st3.Acquire()
	defer snap.Release()
	if err := Identical(want2, snap.Graph()); err != nil {
		return fmt.Errorf("state after post-crash commit differs: %v", err)
	}
	return nil
}
