package graph

// Delta-granular copy-on-write containers.
//
// A committed epoch's graph is immutable while readers hold it, so a
// writer that must not disturb pinned readers used to deep-copy the
// whole graph — an O(graph) price for a possibly 1-row transaction.
// This file provides the structure-sharing containers that make such a
// writer O(changes) instead: the clone shares every bucket of every
// container with the published snapshot and copies only the buckets the
// transaction actually touches.
//
// # Ownership tags
//
// Every Graph carries a tag (a process-unique uint64), and every
// shareable unit — a map shard, an adjacency row, an index bucket, a
// stored *Node/*Rel — records the tag of the graph that created it.
// cloneCOW gives the clone a fresh tag and shares all units; a mutation
// then goes through a "writable" accessor that compares the unit's tag
// with the graph's and copies the unit first when they differ. Units
// copied (or created) by the writer carry the writer's tag, so the
// second touch is a plain in-place write.
//
// The tag discipline is what makes the store's in-place fast path safe
// after COW commits: the published graph may still share buckets with
// older pinned epochs, and an in-place writer copies exactly those
// buckets (tag mismatch) while mutating its own directly. No flags are
// ever written on shared structures — cloning only reads the parent —
// so concurrent readers of the parent snapshot race with nothing.
//
// # Sharding
//
// Entity ids are dense and monotonically allocated, so the id-keyed
// containers (nodes, rels, adjacency, label sets) are two-level: a
// private directory slice indexed by id>>shardBits pointing at shared
// shards of up to 2^shardBits ids. Cloning copies the directory
// (O(entities/2^shardBits) pointers — ~200 at 100k nodes); touching an
// id copies one shard (O(2^shardBits)). Index buckets are keyed by
// canonical value strings and use a fixed fan-out hash directory
// (strMap) with per-bucket node sets as the copy unit.

import "sync/atomic"

// cowTagCounter allocates process-unique graph ownership tags.
var cowTagCounter atomic.Uint64

func newCowTag() uint64 { return cowTagCounter.Add(1) }

// shardBits sets the id-shard granularity: shards span 2^shardBits
// consecutive ids, so a copy-on-write touch pays at most that many map
// inserts while the clone-time directory copy is entities/2^shardBits.
const shardBits = 9

// idShard is one shared unit of an idMap: a plain map over a 2^shardBits
// id range plus the tag of the graph generation that may write it.
type idShard[V any] struct {
	m     map[int64]V
	owner uint64
}

// idMap is a two-level map from positive int64 ids to values with
// shard-granular copy-on-write. The directory slice is private to one
// graph; shards are shared between graph generations until written.
type idMap[V any] struct {
	shards []*idShard[V]
	n      int
}

// get returns the value stored for id.
func (m *idMap[V]) get(id int64) (V, bool) {
	si := int(id >> shardBits)
	if si < 0 || si >= len(m.shards) || m.shards[si] == nil {
		var zero V
		return zero, false
	}
	v, ok := m.shards[si].m[id]
	return v, ok
}

// size reports the number of stored entries.
func (m *idMap[V]) size() int { return m.n }

// writable returns id's shard, first copying it when it is still shared
// with another graph generation (owner tag mismatch).
func (m *idMap[V]) writable(tag uint64, id int64) *idShard[V] {
	si := int(id >> shardBits)
	for si >= len(m.shards) {
		m.shards = append(m.shards, nil)
	}
	s := m.shards[si]
	switch {
	case s == nil:
		s = &idShard[V]{m: make(map[int64]V), owner: tag}
		m.shards[si] = s
	case s.owner != tag:
		c := &idShard[V]{m: make(map[int64]V, len(s.m)), owner: tag}
		for k, v := range s.m {
			c.m[k] = v
		}
		s = c
		m.shards[si] = s
	}
	return s
}

// put stores v under id, copying the containing shard first if shared.
func (m *idMap[V]) put(tag uint64, id int64, v V) {
	s := m.writable(tag, id)
	if _, ok := s.m[id]; !ok {
		m.n++
	}
	s.m[id] = v
}

// del removes id. Deleting an absent id is a no-op and copies nothing.
func (m *idMap[V]) del(tag uint64, id int64) {
	si := int(id >> shardBits)
	if si < 0 || si >= len(m.shards) || m.shards[si] == nil {
		return
	}
	if _, ok := m.shards[si].m[id]; !ok {
		return
	}
	s := m.writable(tag, id)
	delete(s.m, id)
	m.n--
}

// each calls f for every entry, in no particular order (callers sort).
func (m *idMap[V]) each(f func(id int64, v V)) {
	for _, s := range m.shards {
		if s == nil {
			continue
		}
		for k, v := range s.m {
			f(k, v)
		}
	}
}

// cloneShared returns an idMap sharing every shard with m. The caller's
// graph tag differs from every shard's owner, so the first write to any
// shard copies it; m's side is never written again (it belongs to a
// published, immutable epoch).
func (m *idMap[V]) cloneShared() idMap[V] {
	return idMap[V]{shards: append([]*idShard[V](nil), m.shards...), n: m.n}
}

// adjRow is one node's cached sorted adjacency list (out or in). The
// slice is the copy-on-write unit: rows are shared across epochs and
// copied before the first append/remove by a new graph generation, so a
// published snapshot's adjacency is never resliced under a reader.
type adjRow struct {
	ids   []RelID
	owner uint64
}

// adjWritable returns a mutable adjacency row for id, creating an empty
// one or copying a shared one as needed.
func (g *Graph) adjWritable(m *idMap[*adjRow], id NodeID) *adjRow {
	row, ok := m.get(int64(id))
	switch {
	case !ok:
		row = &adjRow{owner: g.tag}
		m.put(g.tag, int64(id), row)
	case row.owner != g.tag:
		row = &adjRow{ids: append([]RelID(nil), row.ids...), owner: g.tag}
		m.put(g.tag, int64(id), row)
	}
	return row
}

// adjIDs returns the (read-only) adjacency list stored for id.
func adjIDs(m *idMap[*adjRow], id NodeID) []RelID {
	row, ok := m.get(int64(id))
	if !ok {
		return nil
	}
	return row.ids
}

// adjRemove deletes rid from id's adjacency list, copying the row only
// when rid is actually present.
func (g *Graph) adjRemove(m *idMap[*adjRow], id NodeID, rid RelID) {
	row, ok := m.get(int64(id))
	if !ok {
		return
	}
	found := false
	for _, x := range row.ids {
		if x == rid {
			found = true
			break
		}
	}
	if !found {
		return
	}
	row = g.adjWritable(m, id)
	row.ids = removeRelID(row.ids, rid)
}

// labelSet is the per-label node-id set, sharded like every id-keyed
// container so that adding one node to a 100k-node label copies one
// shard, not the whole set.
type labelSet = idMap[struct{}]

// mutableNode returns the stored node for id, first replacing a node
// object shared with another epoch by a private copy (the node-level
// copy-on-write unit: Labels and Props maps are mutated in place).
// It returns nil when the node does not exist.
func (g *Graph) mutableNode(id NodeID) *Node {
	n, ok := g.nodes.get(int64(id))
	if !ok {
		return nil
	}
	if n.owner != g.tag {
		n = copyNode(n)
		n.owner = g.tag
		g.nodes.put(g.tag, int64(id), n)
	}
	return n
}

// mutableRel is mutableNode for relationships.
func (g *Graph) mutableRel(id RelID) *Rel {
	r, ok := g.rels.get(int64(id))
	if !ok {
		return nil
	}
	if r.owner != g.tag {
		r = copyRel(r)
		r.owner = g.tag
		g.rels.put(g.tag, int64(id), r)
	}
	return r
}

// cloneCOW returns a graph that shares all unmodified structure with g
// and copies only what it later writes: the directories (shard slices,
// label/index catalogs) are copied eagerly — O(entities/2^shardBits +
// labels + indexes), a few hundred pointers for a 100k-node graph —
// while every shard, adjacency row, node, relationship and index bucket
// stays shared until touched. g must be immutable for as long as the
// clone lives (the store guarantees this: cloneCOW is only applied to
// published epochs, which are never written again).
func (g *Graph) cloneCOW() *Graph {
	ng := &Graph{
		tag:        newCowTag(),
		nodes:      g.nodes.cloneShared(),
		rels:       g.rels.cloneShared(),
		outgoing:   g.outgoing.cloneShared(),
		incoming:   g.incoming.cloneShared(),
		byLabel:    make(map[string]*labelSet, len(g.byLabel)),
		nextNode:   g.nextNode,
		nextRel:    g.nextRel,
		version:    g.version,
		indexEpoch: g.indexEpoch,
		stats:      g.stats.clone(),
	}
	for l, set := range g.byLabel {
		cs := set.cloneShared()
		ng.byLabel[l] = &cs
	}
	if len(g.indexes) > 0 {
		ng.indexes = make(map[IndexKey]*propIndex, len(g.indexes))
		for k, x := range g.indexes {
			ng.indexes[k] = x.cloneShared()
		}
	}
	return ng
}

// strShardCount is the fixed fan-out of the string-keyed bucket
// directory inside each property index: a copy-on-write touch copies
// distinct-keys/strShardCount bucket pointers instead of the whole
// directory (~400 pointers per touched shard on a 100k-distinct-key
// index).
const strShardCount = 256

// strShard is one shared unit of a strMap: canonical value keys to
// bucket sets for 1/strShardCount of the key space.
type strShard struct {
	m     map[string]*idSetCOW
	owner uint64
}

// idSetCOW is one index bucket: the set of nodes storing one canonical
// value, copied as a whole on first touch by a new graph generation
// (buckets are small — IndexAvgBucket-sized — by construction).
type idSetCOW struct {
	m     map[NodeID]struct{}
	owner uint64
}

// strMap is the sharded bucket directory of a property index.
type strMap struct {
	shards [strShardCount]*strShard
	keys   int // distinct canonical keys (len of the logical map)
}

// strShardIndex hashes a canonical value key to its shard (FNV-1a).
func strShardIndex(k string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return int(h % strShardCount)
}

// bucket returns the node set stored under key k, or nil.
func (m *strMap) bucket(k string) map[NodeID]struct{} {
	sh := m.shards[strShardIndex(k)]
	if sh == nil {
		return nil
	}
	if set := sh.m[k]; set != nil {
		return set.m
	}
	return nil
}

// writableShard returns k's shard, copying a shared one first. The copy
// duplicates only bucket pointers; bucket sets stay shared until
// writableBucket touches them.
func (m *strMap) writableShard(tag uint64, k string) *strShard {
	si := strShardIndex(k)
	s := m.shards[si]
	switch {
	case s == nil:
		s = &strShard{m: make(map[string]*idSetCOW), owner: tag}
		m.shards[si] = s
	case s.owner != tag:
		c := &strShard{m: make(map[string]*idSetCOW, len(s.m)), owner: tag}
		for key, set := range s.m {
			c.m[key] = set
		}
		s = c
		m.shards[si] = s
	}
	return s
}

// writableBucket returns k's shard and a mutable bucket for k, creating
// an empty bucket (counted in keys) or copying a shared one as needed.
func (m *strMap) writableBucket(tag uint64, k string) (*strShard, *idSetCOW) {
	sh := m.writableShard(tag, k)
	set := sh.m[k]
	switch {
	case set == nil:
		set = &idSetCOW{m: make(map[NodeID]struct{}), owner: tag}
		sh.m[k] = set
		m.keys++
	case set.owner != tag:
		c := &idSetCOW{m: make(map[NodeID]struct{}, len(set.m)), owner: tag}
		for n := range set.m {
			c.m[n] = struct{}{}
		}
		set = c
		sh.m[k] = set
	}
	return sh, set
}
