package graph

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/value"
)

func sortedAscending(ids []RelID) bool {
	return sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Adjacency lists are maintained sorted on insert so Outgoing/Incoming
// can return the cached slice without a per-call sort-copy. The
// invariant must survive interleaved creation, deletion, rollback
// restore, and codec round-trips.
func TestAdjacencyStaysSorted(t *testing.T) {
	g := New()
	hub := g.CreateNode([]string{"Hub"}, nil)
	var rels []RelID
	for i := 0; i < 20; i++ {
		other := g.CreateNode(nil, nil)
		r, err := g.CreateRel(hub.ID, other.ID, "T", nil)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r.ID)
	}
	if !sortedAscending(g.Outgoing(hub.ID)) {
		t.Fatal("outgoing unsorted after creation")
	}

	// Delete some middle relationships inside a journal, create new ones
	// (higher ids), then roll back: the restore path must insert the old
	// ids back into sorted position, not append them.
	j := g.BeginJournal()
	g.DeleteRel(rels[3])
	g.DeleteRel(rels[10])
	other := g.CreateNode(nil, nil)
	if _, err := g.CreateRel(hub.ID, other.ID, "T", nil); err != nil {
		t.Fatal(err)
	}
	if !sortedAscending(g.Outgoing(hub.ID)) {
		t.Fatal("outgoing unsorted mid-statement")
	}
	j.Rollback()
	out := g.Outgoing(hub.ID)
	if !sortedAscending(out) {
		t.Fatalf("outgoing unsorted after rollback: %v", out)
	}
	if len(out) != 20 {
		t.Fatalf("outgoing len = %d, want 20", len(out))
	}

	// Committed deletions keep order too.
	g.DeleteRel(rels[0])
	g.DeleteRel(rels[19])
	if !sortedAscending(g.Outgoing(hub.ID)) {
		t.Fatal("outgoing unsorted after deletions")
	}
	if !sortedAscending(g.Incoming(hub.ID)) {
		t.Fatal("incoming unsorted")
	}
}

func TestDetachDeleteWithSharedAdjacency(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	for i := 0; i < 5; i++ {
		if _, err := g.CreateRel(a.ID, b.ID, "T", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := g.CreateRel(b.ID, a.ID, "U", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Self-loops exercise the same-list mutation path.
	if _, err := g.CreateRel(a.ID, a.ID, "S", nil); err != nil {
		t.Fatal(err)
	}
	g.DetachDeleteNode(a.ID)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumRels() != 0 || g.NumNodes() != 1 {
		t.Fatalf("got %d nodes / %d rels after detach delete", g.NumNodes(), g.NumRels())
	}
}

// BenchmarkAdjacency is the regression benchmark for the Outgoing /
// Incoming hot path: before caching, every call sort-copied the
// adjacency slice (O(d log d) per call); now it returns the maintained
// slice in O(1).
func BenchmarkAdjacency(b *testing.B) {
	for _, degree := range []int{16, 256, 4096} {
		g := New()
		hub := g.CreateNode([]string{"Hub"}, nil)
		for i := 0; i < degree; i++ {
			other := g.CreateNode(nil, value.Map{"i": value.Int(int64(i))})
			if _, err := g.CreateRel(hub.ID, other.ID, "T", nil); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total += len(g.Outgoing(hub.ID))
			}
			_ = total
		})
	}
}
