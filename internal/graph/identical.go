package graph

// Identical: exact graph equality, id for id and bit for bit. The
// isomorphism checker of iso.go answers "equal up to id renaming"; the
// durability tests need something stricter — recovery must reproduce
// the committed graph exactly, ids, counters and float bit patterns
// included.

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Identical reports (as a nil error) whether a and b are exactly the
// same graph: same node and relationship ids, same labels, same
// properties with bit-identical values (NaN equals NaN; 1 and 1.0
// differ), same index definitions, and same id counters. Index
// contents are not compared: they are derived state, rebuilt from
// graph content, and their equivalence to a rescan is property-tested
// separately. A non-nil error names the first difference found.
func Identical(a, b *Graph) error {
	if a.nextNode != b.nextNode || a.nextRel != b.nextRel {
		return fmt.Errorf("id counters differ: (%d,%d) vs (%d,%d)", a.nextNode, a.nextRel, b.nextNode, b.nextRel)
	}
	if a.NumNodes() != b.NumNodes() {
		return fmt.Errorf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if a.NumRels() != b.NumRels() {
		return fmt.Errorf("relationship counts differ: %d vs %d", a.NumRels(), b.NumRels())
	}
	for _, id := range a.NodeIDs() {
		na, nb := a.Node(id), b.Node(id)
		if nb == nil {
			return fmt.Errorf("node %d missing from second graph", id)
		}
		if len(na.Labels) != len(nb.Labels) {
			return fmt.Errorf("node %d label sets differ", id)
		}
		for l := range na.Labels {
			if _, ok := nb.Labels[l]; !ok {
				return fmt.Errorf("node %d missing label %q in second graph", id, l)
			}
		}
		if err := identicalProps(na.Props, nb.Props); err != nil {
			return fmt.Errorf("node %d: %w", id, err)
		}
	}
	for _, id := range a.RelIDs() {
		ra, rb := a.Rel(id), b.Rel(id)
		if rb == nil {
			return fmt.Errorf("relationship %d missing from second graph", id)
		}
		if ra.Type != rb.Type || ra.Src != rb.Src || ra.Tgt != rb.Tgt {
			return fmt.Errorf("relationship %d differs: %s(%d->%d) vs %s(%d->%d)",
				id, ra.Type, ra.Src, ra.Tgt, rb.Type, rb.Src, rb.Tgt)
		}
		if err := identicalProps(ra.Props, rb.Props); err != nil {
			return fmt.Errorf("relationship %d: %w", id, err)
		}
	}
	ia, ib := a.Indexes(), b.Indexes()
	if len(ia) != len(ib) {
		return fmt.Errorf("index counts differ: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			return fmt.Errorf("index definitions differ: %v vs %v", ia[i], ib[i])
		}
	}
	return nil
}

func identicalProps(a, b map[string]value.Value) error {
	if len(a) != len(b) {
		return fmt.Errorf("property counts differ: %d vs %d", len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return fmt.Errorf("property %q missing in second graph", k)
		}
		if !valueBitIdentical(va, vb) {
			return fmt.Errorf("property %q differs: %v vs %v", k, va, vb)
		}
	}
	return nil
}

// valueBitIdentical compares two runtime values exactly: same kind,
// and floats by bit pattern (so NaN matches NaN and 1.0 never matches
// the integer 1).
func valueBitIdentical(a, b value.Value) bool {
	switch x := a.(type) {
	case nil, value.Null:
		switch b.(type) {
		case nil, value.Null:
			return true
		}
		return false
	case value.Bool:
		y, ok := b.(value.Bool)
		return ok && x == y
	case value.Int:
		y, ok := b.(value.Int)
		return ok && x == y
	case value.Float:
		y, ok := b.(value.Float)
		return ok && math.Float64bits(float64(x)) == math.Float64bits(float64(y))
	case value.String:
		y, ok := b.(value.String)
		return ok && x == y
	case value.List:
		y, ok := b.(value.List)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !valueBitIdentical(x[i], y[i]) {
				return false
			}
		}
		return true
	case value.Map:
		y, ok := b.(value.Map)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, ok := y[k]
			if !ok || !valueBitIdentical(v, w) {
				return false
			}
		}
		return true
	default:
		// Entity values (Node, Rel, Path) are not storable as
		// properties; fall back to the interpreter's equality.
		return value.Equal(a, b) == value.True
	}
}
