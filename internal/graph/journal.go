package graph

import "repro/internal/value"

// Journal is an undo log giving statements all-or-nothing semantics: every
// mutation made while a journal is attached records its inverse, and
// Rollback replays the inverses in reverse order. This is how the engine
// guarantees that a failing statement (e.g. a revised-semantics SET
// conflict or strict DELETE error) leaves the graph untouched.
//
// The journal doubles as the change record of the commit pipeline: the
// entries describe exactly what a transaction touched, so the store
// derives the committed epoch's structural Delta from them (feed.go) —
// the copy-on-write commit path introduces no separate change tracking.
type Journal struct {
	g       *Graph
	entries []undoEntry
}

type undoEntry interface {
	undo(g *Graph)
}

// BeginJournal attaches a fresh journal to the graph and returns it.
// Only one journal may be active at a time; nesting panics, as it
// indicates an engine bug.
func (g *Graph) BeginJournal() *Journal {
	if g.journal != nil {
		panic("graph: nested journal")
	}
	j := &Journal{g: g}
	g.journal = j
	return j
}

func (j *Journal) record(e undoEntry) {
	j.entries = append(j.entries, e)
}

// Len reports the number of recorded mutations.
func (j *Journal) Len() int { return len(j.entries) }

// Mark returns a position in the journal to which RollbackTo can later
// rewind. Transactions use marks for statement-level rollback: a failed
// statement inside an open transaction is undone without disturbing the
// statements committed to the journal before it.
func (j *Journal) Mark() int { return len(j.entries) }

// RollbackTo undoes, in reverse order, every mutation recorded after
// the given mark, leaving the journal attached and the earlier entries
// intact.
func (j *Journal) RollbackTo(mark int) {
	for i := len(j.entries) - 1; i >= mark; i-- {
		j.entries[i].undo(j.g)
	}
	j.entries = j.entries[:mark]
}

// Commit detaches the journal, keeping all mutations.
func (j *Journal) Commit() {
	j.g.journal = nil
	j.entries = nil
}

// Rollback detaches the journal and undoes all recorded mutations in
// reverse order, restoring the graph to its state at BeginJournal.
func (j *Journal) Rollback() {
	j.g.journal = nil
	for i := len(j.entries) - 1; i >= 0; i-- {
		j.entries[i].undo(j.g)
	}
	j.entries = nil
}

// Discard detaches the journal and abandons its entries without undoing
// them. The copy-on-write rollback path uses it: when a transaction's
// working graph is a structure-sharing clone, rolling back means
// throwing the clone away wholesale — replaying inverses onto a graph
// nobody will ever observe would be wasted work.
func (j *Journal) Discard() {
	j.g.journal = nil
	j.entries = nil
}

type undoCreateNode struct{ id NodeID }

func (u undoCreateNode) undo(g *Graph) {
	if n := g.Node(u.id); n != nil {
		g.removeNodeInternal(n)
	}
	g.outgoing.del(g.tag, int64(u.id))
	g.incoming.del(g.tag, int64(u.id))
}

type undoCreateRel struct{ id RelID }

func (u undoCreateRel) undo(g *Graph) {
	r := g.Rel(u.id)
	if r == nil {
		return
	}
	g.statsRel(r, -1)
	g.rels.del(g.tag, int64(u.id))
	g.adjRemove(&g.outgoing, r.Src, u.id)
	g.adjRemove(&g.incoming, r.Tgt, u.id)
}

type undoDeleteNode struct{ node *Node }

func (u undoDeleteNode) undo(g *Graph) { g.restoreNode(u.node) }

type undoDeleteRel struct{ rel *Rel }

func (u undoDeleteRel) undo(g *Graph) { g.restoreRel(u.rel) }

type undoSetNodeProp struct {
	id  NodeID
	key string
	old value.Value
	had bool
}

func (u undoSetNodeProp) undo(g *Graph) {
	n := g.mutableNode(u.id)
	if n == nil {
		return
	}
	cur, has := n.Props[u.key]
	g.indexPropWrite(n, u.key, cur, has, u.old, u.had)
	if u.had {
		n.Props[u.key] = u.old
	} else {
		delete(n.Props, u.key)
	}
}

type undoSetRelProp struct {
	id  RelID
	key string
	old value.Value
	had bool
}

func (u undoSetRelProp) undo(g *Graph) {
	r := g.mutableRel(u.id)
	if r == nil {
		return
	}
	if u.had {
		r.Props[u.key] = u.old
	} else {
		delete(r.Props, u.key)
	}
}

type undoAddLabel struct {
	id    NodeID
	label string
}

func (u undoAddLabel) undo(g *Graph) {
	n := g.mutableNode(u.id)
	if n == nil {
		return
	}
	g.statsLabel(u.id, u.label, -1)
	g.indexNodeLabel(n, u.label, false)
	delete(n.Labels, u.label)
	g.unindexLabel(u.label, u.id)
}

type undoRemoveLabel struct {
	id    NodeID
	label string
}

func (u undoRemoveLabel) undo(g *Graph) {
	n := g.mutableNode(u.id)
	if n == nil {
		return
	}
	n.Labels[u.label] = struct{}{}
	g.indexLabel(u.label, u.id)
	g.indexNodeLabel(n, u.label, true)
	g.statsLabel(u.id, u.label, +1)
}
