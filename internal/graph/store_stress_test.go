package graph

// Randomized reader/writer interleaving stress (PR 5 satellite): readers
// churn Acquire/Release against writers alternating between the
// in-place and copy-on-write commit paths, with rollbacks mixed in.
// Run under `-race` (CI does), this is the executable claim that the
// structure-sharing containers never let a writer touch memory a pinned
// reader can see.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/value"
)

// TestStoreReaderWriterStress drives one writer goroutine (the store is
// single-writer by construction) against many churning readers.
//
// Invariants checked:
//   - no torn reads: writers only ever commit batches of `batch` nodes
//     labeled :S with a marker property, so every snapshot must show
//     count(:S) == NumNodes, both divisible by batch, with the label
//     index, statistics and property index agreeing;
//   - no reader starvation: every reader completes its full quota of
//     acquisitions while the writer runs (the test would time out
//     otherwise, and the final quota assertion would fail);
//   - pin-count integrity: after all pins drain, the next writer takes
//     the in-place fast path again, which is only legal at exactly
//     zero pins.
func TestStoreReaderWriterStress(t *testing.T) {
	const (
		readers   = 6
		readQuota = 120
		batch     = 3
		txns      = 150
	)
	g := New()
	g.CreateIndex("S", "i")
	s := NewStore(g)

	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			// Run until BOTH the starvation quota is met and the writer
			// has finished, so readers overlap every write transaction.
			running := func(k int) bool {
				if k < readQuota {
					return true
				}
				select {
				case <-writerDone:
					return false
				default:
					return true
				}
			}
			for k := 0; running(k); k++ {
				sn := s.Acquire()
				gg := sn.Graph()
				n := gg.NumNodes()
				if n%batch != 0 {
					t.Errorf("reader %d: %d nodes is not a committed multiple of %d", r, n, batch)
				}
				if got := gg.NodeCountByLabel("S"); got != n {
					t.Errorf("reader %d: label index says %d :S nodes, store has %d", r, got, n)
				}
				if rng.Intn(4) == 0 {
					// Deep consistency probe: sorted ids, stats recount,
					// an index bucket.
					ids := gg.NodeIDsByLabel("S")
					if len(ids) != n {
						t.Errorf("reader %d: NodeIDsByLabel %d vs %d nodes", r, len(ids), n)
					}
					if len(ids) > 0 {
						probe := ids[rng.Intn(len(ids))]
						v, ok := gg.Node(probe).Props["i"]
						if !ok {
							t.Errorf("reader %d: node %d lost its marker", r, probe)
						} else if hits := gg.NodeIDsByProp("S", "i", v); len(hits) == 0 {
							t.Errorf("reader %d: index bucket for %v empty", r, v)
						}
					}
				}
				sn.Release()
			}
		}()
	}

	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < txns; i++ {
			var pin *Snapshot
			if i%2 == 1 {
				// Force the copy-on-write path on odd transactions; even
				// ones take whichever path the reader churn dictates, so
				// both pipelines interleave.
				pin = s.Acquire()
			}
			w := s.BeginWrite()
			for b := 0; b < batch; b++ {
				w.Graph().CreateNode([]string{"S"}, value.Map{"i": value.Int(int64(i*batch + b))})
			}
			if rng.Intn(5) == 0 {
				// A doomed half-batch must never become visible.
				w.Graph().CreateNode([]string{"Torn"}, nil)
				w.Graph().CreateNode([]string{"S"}, nil)
				w.Rollback()
			} else {
				w.Commit()
			}
			if pin != nil {
				pin.Release()
			}
		}
	}()

	wg.Wait()
	<-writerDone

	final := s.Acquire()
	n := final.Graph().NumNodes()
	if n%batch != 0 {
		t.Fatalf("final node count %d not a multiple of %d", n, batch)
	}
	if len(final.Graph().NodeIDsByLabel("Torn")) != 0 {
		t.Fatal("rolled-back node visible after the run")
	}
	checkGraphInvariants(t, final.Graph(), "final")
	final.Release()

	// All pins drained: the next writer must take the in-place path,
	// which is only legal at exactly zero pins — a leaked or double
	// release would push the count off zero.
	w := s.BeginWrite()
	if w.cloned {
		t.Fatal("writer cloned after all pins drained: pin count corrupted")
	}
	w.Commit()
}

// TestSnapshotDoubleReleasePanics pins the Release guard (PR 5
// satellite): a double release corrupts the pin count — it could flip a
// later writer onto the in-place path under a live reader — so it must
// fail loudly at the faulty call site instead.
func TestSnapshotDoubleReleasePanics(t *testing.T) {
	s := NewStore(New())
	sn := s.Acquire()
	sn.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	sn.Release()
}

// TestSnapshotBalancedReleaseDoesNotPanic: the guard must not fire on
// correct pairing, including multiple concurrent pins of one snapshot.
func TestSnapshotBalancedReleaseDoesNotPanic(t *testing.T) {
	s := NewStore(New())
	a := s.Acquire()
	b := s.Acquire()
	if a != b {
		t.Fatal("expected both pins on the published snapshot")
	}
	a.Release()
	b.Release()
	w := s.BeginWrite()
	if w.cloned {
		t.Fatal("balanced releases should leave zero pins (in-place path)")
	}
	w.Commit()
}
