package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/value"
)

// mutate runs one committed transaction on st covering every delta
// section: creates, deletes, labels, properties (NaN included), and
// an index flip.
func mutateAll(t testing.TB, st *Store) {
	t.Helper()
	w := st.BeginWrite()
	g := w.Graph()
	a := g.CreateNode([]string{"User"}, value.Map{"name": value.String("ada"), "f": value.Float(math.NaN())})
	b := g.CreateNode([]string{"User", "Admin"}, value.Map{"n": value.Int(1)})
	if _, err := g.CreateRel(a.ID, b.ID, "KNOWS", value.Map{"w": value.Float(1.5)}); err != nil {
		t.Fatal(err)
	}
	g.CreateIndex("User", "name")
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	w = st.BeginWrite()
	g = w.Graph()
	c := g.CreateNode(nil, nil)
	if err := g.AddLabel(c.ID, "Temp"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeProp(a.ID, "name", value.String("grace")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeProp(b.ID, "n", value.NullValue); err != nil {
		t.Fatal(err)
	}
	g.DetachDeleteNode(b.ID)
	g.DropIndex("User", "name")
	g.CreateIndex("Temp", "x")
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

// reopenAndCompare recovers dir and asserts the recovered graph is
// bit-identical to want.
func reopenAndCompare(t *testing.T, dir string, want *Graph, wantEpoch int64) {
	t.Helper()
	st, wal, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	snap := st.Acquire()
	defer snap.Release()
	if err := Identical(want, snap.Graph()); err != nil {
		t.Fatalf("recovered graph differs: %v", err)
	}
	if st.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch = %d, want %d", st.Epoch(), wantEpoch)
	}
}

func TestDurableCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	st, wal, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, st)
	snap := st.Acquire()
	want := snap.Graph().Clone()
	snap.Release()
	epoch := st.Epoch()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndCompare(t, dir, want, epoch)
}

func TestRecoveryWithoutCleanClose(t *testing.T) {
	// No Close at all: SyncAlways means every commit is already on
	// disk, so recovery must still see everything.
	dir := t.TempDir()
	st, _, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, st)
	snap := st.Acquire()
	want := snap.Graph().Clone()
	epoch := st.Epoch()
	snap.Release()
	reopenAndCompare(t, dir, want, epoch)
}

func TestRollbackWritesNoRecord(t *testing.T) {
	dir := t.TempDir()
	st, wal, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, st)
	// Clone before the rollback: ids the rolled-back transaction
	// consumed are never logged, so recovery resumes at this state.
	snap := st.Acquire()
	want := snap.Graph().Clone()
	snap.Release()
	before := wal.Status().Records
	w := st.BeginWrite()
	w.Graph().CreateNode([]string{"Ghost"}, nil)
	w.Rollback()
	if got := wal.Status().Records; got != before {
		t.Fatalf("rollback appended a record: %d -> %d", before, got)
	}
	wal.Close()
	// The rollback advanced the in-memory epoch but logged nothing, so
	// recovery resumes at the last logged epoch.
	reopenAndCompare(t, dir, want, wal.Status().LastEpoch)
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, wal, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, st)
	snap := st.Acquire()
	want := snap.Graph().Clone()
	epoch := st.Epoch()
	snap.Release()
	wal.Close()

	logPath := filepath.Join(dir, walFileName)
	intact, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, tear := range [][]byte{
		{0x01},                   // lone garbage byte: torn frame header
		{0xff, 0xff, 0xff, 0x7f}, // absurd length prefix
		// A full frame header promising more payload than exists.
		func() []byte {
			b := make([]byte, 8+3)
			binary.LittleEndian.PutUint32(b, 100)
			return b
		}(),
		// A complete frame whose checksum does not match.
		func() []byte {
			payload := []byte("not a record")
			b := make([]byte, 8)
			binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload)+1)
			return append(b, payload...)
		}(),
	} {
		if err := os.WriteFile(logPath, append(append([]byte(nil), intact...), tear...), 0o666); err != nil {
			t.Fatal(err)
		}
		reopenAndCompare(t, dir, want, epoch)
		after, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after, intact) {
			t.Fatalf("torn tail not truncated back to the valid prefix (len %d vs %d)", len(after), len(intact))
		}
	}
	// A torn header on a brand-new log is also recoverable: nothing was
	// committed yet.
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, walFileName), []byte(walMagic[:4]), 0o666); err != nil {
		t.Fatal(err)
	}
	reopenAndCompare(t, empty, New(), 0)
}

func TestChecksummedCorruptionIsFatal(t *testing.T) {
	// A record that passes its CRC but does not decode is corruption,
	// not a torn tail: recovery must refuse, not silently truncate.
	dir := t.TempDir()
	_, wal, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	wal.Close()
	payload := []byte{99} // unknown record version
	frame := make([]byte, 8)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame)
	f.Write(payload)
	f.Close()
	if _, _, err := Recover(dir, Durability{}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("recovery of a checksummed-but-invalid record: err = %v, want corruption error", err)
	}
}

func TestCheckpointCompactsLog(t *testing.T) {
	dir := t.TempDir()
	st, wal, err := Recover(dir, Durability{CheckpointBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		w := st.BeginWrite()
		w.Graph().CreateNode([]string{"N"}, value.Map{"i": value.Int(int64(i))})
		if _, err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	status := wal.Status()
	if status.Checkpoints == 0 {
		t.Fatal("no automatic checkpoint despite tiny threshold")
	}
	if status.Bytes >= 50*20 {
		t.Fatalf("log not compacted: %d bytes after %d checkpoints", status.Bytes, status.Checkpoints)
	}
	snap := st.Acquire()
	want := snap.Graph().Clone()
	epoch := st.Epoch()
	snap.Release()
	wal.Close()
	reopenAndCompare(t, dir, want, epoch)
}

func TestExplicitCheckpointAndTruncateCrashWindow(t *testing.T) {
	dir := t.TempDir()
	st, wal, err := Recover(dir, Durability{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, st)
	// Save the pre-checkpoint log, checkpoint, then splice the old
	// records back in after the fresh header: the on-disk state of a
	// crash after the snapshot rename but before the log truncate.
	logPath := filepath.Join(dir, walFileName)
	oldLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := st.Acquire()
	want := snap.Graph().Clone()
	epoch := st.Epoch()
	snap.Release()
	wal.Close()
	if err := os.WriteFile(logPath, oldLog, 0o666); err != nil {
		t.Fatal(err)
	}
	// Every record in the restored log has epoch <= the snapshot's;
	// recovery must skip them all (applying them would duplicate
	// creations and fail).
	st2, wal2, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := wal2.Status().Replayed; got != 0 {
		t.Fatalf("replayed %d records already covered by the checkpoint", got)
	}
	snap2 := st2.Acquire()
	defer snap2.Release()
	if err := Identical(want, snap2.Graph()); err != nil {
		t.Fatalf("recovered graph differs: %v", err)
	}
	if st2.Epoch() != epoch {
		t.Fatalf("recovered epoch = %d, want %d", st2.Epoch(), epoch)
	}
}

func TestCheckpointOfNonDurableStore(t *testing.T) {
	st := NewStore(New())
	if err := st.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory store did not error")
	}
	if st.WAL() != nil {
		t.Fatal("in-memory store reports a WAL")
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	// Every delta section, via a real committed transaction's delta.
	dir := t.TempDir()
	st, wal, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	var got *Delta
	st.OnCommit(func(d *Delta) { got = d })
	mutateAll(t, st)
	if got == nil {
		t.Fatal("no delta delivered")
	}
	snap := st.Acquire()
	defer snap.Release()
	rec := recordFromDelta(got, snap.Graph())
	payload, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	payload2, err := encodeRecord(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("record does not round-trip bit-identically")
	}
}

func TestDecodeRecordRejectsHostileIDs(t *testing.T) {
	rec := &walRecord{epoch: 1, nodesCreated: []walNode{{id: maxEntityID + 1}}}
	payload, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecord(payload); err == nil {
		t.Fatal("oversized entity id accepted")
	}
}

func TestSnapshotDeltaStillLazyWithHooks(t *testing.T) {
	// The WAL pre-nets the delta; Snapshot.Delta must return the same
	// object, not re-derive or lose it.
	dir := t.TempDir()
	st, wal, err := Recover(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	var hooked *Delta
	st.OnCommit(func(d *Delta) { hooked = d })
	w := st.BeginWrite()
	w.Graph().CreateNode([]string{"A"}, nil)
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := st.Acquire()
	defer snap.Release()
	if snap.Delta() != hooked || hooked == nil {
		t.Fatal("snapshot delta and hook delta diverge under durability")
	}
	if len(hooked.NodesCreated) != 1 {
		t.Fatalf("delta content wrong: %+v", hooked)
	}
}
