package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/value"
)

// rescanIndex recomputes one index's content from a full scan of the
// label, as a map from canonical value keys to sorted node-id slices.
func rescanIndex(g *Graph, key IndexKey) map[string][]NodeID {
	want := make(map[string][]NodeID)
	for _, id := range g.NodeIDsByLabel(key.Label) {
		if v, ok := g.Node(id).Props[key.Prop]; ok {
			k := value.Key(v)
			want[k] = append(want[k], id)
		}
	}
	for k := range want {
		ids := want[k]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return want
}

// checkIndexes asserts every index equals a full rescan: same buckets,
// same members, consistent entry count.
func checkIndexes(t *testing.T, g *Graph, ctx string) {
	t.Helper()
	for _, key := range g.Indexes() {
		want := rescanIndex(g, key)
		idx := g.indexes[key]
		if idx.buckets.keys != len(want) {
			t.Fatalf("%s: index %v has %d buckets, rescan has %d", ctx, key, idx.buckets.keys, len(want))
		}
		buckets := 0
		idx.each(func(string, map[NodeID]struct{}) { buckets++ })
		if buckets != idx.buckets.keys {
			t.Fatalf("%s: index %v stores %d buckets but counts %d", ctx, key, buckets, idx.buckets.keys)
		}
		entries := 0
		for k, ids := range want {
			entries += len(ids)
			set := idx.buckets.bucket(k)
			if len(set) != len(ids) {
				t.Fatalf("%s: index %v bucket %q has %d members, rescan %d", ctx, key, k, len(set), len(ids))
			}
			for _, id := range ids {
				if _, ok := set[id]; !ok {
					t.Fatalf("%s: index %v bucket %q is missing node %d", ctx, key, k, id)
				}
			}
		}
		if idx.entries != entries {
			t.Fatalf("%s: index %v entry count %d, rescan %d", ctx, key, idx.entries, entries)
		}
	}
}

// TestIndexIncrementalMatchesRescan drives random mutation sequences —
// node/relationship create/delete (checked, unchecked and detach),
// label add/remove, property writes, index create/drop, and journal
// rollbacks over all of it — and requires every index to equal a full
// rescan after every batch, plus across Clone and a codec round-trip.
func TestIndexIncrementalMatchesRescan(t *testing.T) {
	labels := []string{"A", "B", "C"}
	props := []string{"p", "q"}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		g.CreateIndex("A", "p") // one index exists from the start
		var nodes []NodeID

		randomLabels := func() []string {
			var out []string
			for _, l := range labels {
				if rng.Intn(2) == 0 {
					out = append(out, l)
				}
			}
			return out
		}
		randomValue := func() value.Value {
			switch rng.Intn(4) {
			case 0:
				return value.Int(int64(rng.Intn(4)))
			case 1:
				return value.Float(float64(rng.Intn(4))) // collides with Int keys
			case 2:
				return value.String("s")
			default:
				return value.NullValue // SET to null removes the property
			}
		}
		pickNode := func() (NodeID, bool) {
			for len(nodes) > 0 {
				i := rng.Intn(len(nodes))
				if g.HasNode(nodes[i]) {
					return nodes[i], true
				}
				nodes = append(nodes[:i], nodes[i+1:]...)
			}
			return 0, false
		}

		mutate := func() {
			switch rng.Intn(12) {
			case 0, 1, 2:
				props := value.Map{}
				if rng.Intn(2) == 0 {
					props["p"] = randomValue()
				}
				if rng.Intn(2) == 0 {
					props["q"] = randomValue()
				}
				n := g.CreateNode(randomLabels(), props)
				nodes = append(nodes, n.ID)
			case 3:
				if a, ok := pickNode(); ok {
					if b, ok2 := pickNode(); ok2 {
						if _, err := g.CreateRel(a, b, "R", nil); err != nil {
							t.Fatal(err)
						}
					}
				}
			case 4:
				if id, ok := pickNode(); ok {
					g.DetachDeleteNode(id)
				}
			case 5:
				if id, ok := pickNode(); ok {
					g.DeleteNodeUnchecked(id)
				}
			case 6, 7:
				if id, ok := pickNode(); ok {
					if err := g.SetNodeProp(id, props[rng.Intn(len(props))], randomValue()); err != nil {
						t.Fatal(err)
					}
				}
			case 8:
				if id, ok := pickNode(); ok {
					if err := g.AddLabel(id, labels[rng.Intn(len(labels))]); err != nil {
						t.Fatal(err)
					}
				}
			case 9:
				if id, ok := pickNode(); ok {
					if err := g.RemoveLabel(id, labels[rng.Intn(len(labels))]); err != nil {
						t.Fatal(err)
					}
				}
			case 10:
				g.CreateIndex(labels[rng.Intn(len(labels))], props[rng.Intn(len(props))])
			case 11:
				g.DropIndex(labels[rng.Intn(len(labels))], props[rng.Intn(len(props))])
			}
		}

		for batch := 0; batch < 40; batch++ {
			useJournal := rng.Intn(3) != 0
			rollback := useJournal && rng.Intn(2) == 0
			var j *Journal
			var before []IndexKey
			if useJournal {
				before = g.Indexes()
				j = g.BeginJournal()
			}
			for i := 0; i < 1+rng.Intn(8); i++ {
				mutate()
			}
			if j != nil {
				if rollback {
					j.Rollback()
					if got := g.Indexes(); !reflect.DeepEqual(got, before) {
						t.Fatalf("seed=%d batch=%d: rollback left index set %v, want %v", seed, batch, got, before)
					}
				} else {
					j.Commit()
				}
			}
			checkIndexes(t, g, fmt.Sprintf("seed=%d batch=%d rollback=%v", seed, batch, rollback))
		}

		checkIndexes(t, g.Clone(), fmt.Sprintf("seed=%d clone", seed))

		// Codec round-trip: definitions persist, contents rebuild. The
		// codec refuses dangling relationships (unchecked deletions), so
		// repair the structural invariant first.
		for _, id := range g.RelIDs() {
			r := g.Rel(id)
			if !g.HasNode(r.Src) || !g.HasNode(r.Tgt) {
				g.DeleteRel(id)
			}
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g2.Indexes(), g.Indexes()) {
			t.Fatalf("seed=%d: codec round-trip changed index set: %v vs %v", seed, g2.Indexes(), g.Indexes())
		}
		checkIndexes(t, g2, fmt.Sprintf("seed=%d codec", seed))
	}
}

// TestIndexLookupSemantics pins the lookup contract: ascending id
// order, numeric key unification (1 and 1.0 share a bucket), empty
// results for unindexed values, and nil for a missing index.
func TestIndexLookupSemantics(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"U"}, value.Map{"v": value.Int(1)})
	b := g.CreateNode([]string{"U"}, value.Map{"v": value.Float(1.0)})
	g.CreateNode([]string{"U"}, value.Map{"v": value.Int(2)})
	g.CreateNode([]string{"U"}, nil)

	if g.NodeIDsByProp("U", "v", value.Int(1)) != nil {
		t.Fatal("lookup without an index must return nil")
	}
	if !g.CreateIndex("U", "v") {
		t.Fatal("CreateIndex reported no new index")
	}
	if g.CreateIndex("U", "v") {
		t.Fatal("CreateIndex must be idempotent")
	}
	got := g.NodeIDsByProp("U", "v", value.Int(1))
	want := []NodeID{a.ID, b.ID}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NodeIDsByProp = %v, want %v (int/float unified, ascending)", got, want)
	}
	if got := g.NodeIDsByProp("U", "v", value.Float(2.0)); len(got) != 1 {
		t.Fatalf("float seek over int value found %v", got)
	}
	if got := g.NodeIDsByProp("U", "v", value.Int(9)); len(got) != 0 {
		t.Fatalf("absent value found %v", got)
	}
	if avg := g.IndexAvgBucket("U", "v"); avg != 1.5 {
		t.Fatalf("IndexAvgBucket = %v, want 1.5 (3 entries / 2 keys)", avg)
	}
	if avg := g.IndexAvgBucket("U", "zz"); avg != -1 {
		t.Fatalf("IndexAvgBucket without index = %v, want -1", avg)
	}
	if !g.DropIndex("U", "v") {
		t.Fatal("DropIndex reported no index")
	}
	if g.DropIndex("U", "v") {
		t.Fatal("DropIndex of a missing index must report false")
	}
}

// TestIndexSchemaJournalRollback pins the journaled schema operations:
// a rolled-back CREATE INDEX vanishes, a rolled-back DROP INDEX
// rebuilds the index with content equal to a rescan, and the index
// epoch moves on every transition so cached plans invalidate.
func TestIndexSchemaJournalRollback(t *testing.T) {
	g := New()
	g.CreateNode([]string{"U"}, value.Map{"v": value.Int(7)})

	epoch := g.IndexEpoch()
	j := g.BeginJournal()
	g.CreateIndex("U", "v")
	j.Rollback()
	if g.HasIndex("U", "v") {
		t.Fatal("rolled-back CREATE INDEX survived")
	}
	if g.IndexEpoch() == epoch {
		t.Fatal("index epoch unchanged across create+rollback")
	}

	g.CreateIndex("U", "v")
	j = g.BeginJournal()
	g.DropIndex("U", "v")
	g.CreateNode([]string{"U"}, value.Map{"v": value.Int(7)})
	j.Rollback()
	if !g.HasIndex("U", "v") {
		t.Fatal("rolled-back DROP INDEX did not restore the index")
	}
	checkIndexes(t, g, "after drop rollback")
	if got := g.NodeIDsByProp("U", "v", value.Int(7)); len(got) != 1 {
		t.Fatalf("restored index content wrong: %v", got)
	}

	// Statement-level RollbackTo: mutations after the mark are undone in
	// the index too, earlier ones are kept.
	j = g.BeginJournal()
	g.CreateNode([]string{"U"}, value.Map{"v": value.Int(8)})
	mark := j.Mark()
	g.CreateNode([]string{"U"}, value.Map{"v": value.Int(9)})
	if err := g.SetNodeProp(1, "v", value.Int(99)); err != nil {
		t.Fatal(err)
	}
	j.RollbackTo(mark)
	j.Commit()
	checkIndexes(t, g, "after RollbackTo")
	if got := g.NodeIDsByProp("U", "v", value.Int(9)); len(got) != 0 {
		t.Fatalf("post-mark creation survived RollbackTo: %v", got)
	}
	if got := g.NodeIDsByProp("U", "v", value.Int(8)); len(got) != 1 {
		t.Fatalf("pre-mark creation lost by RollbackTo: %v", got)
	}
	if got := g.NodeIDsByProp("U", "v", value.Int(7)); len(got) != 1 {
		t.Fatalf("property write not undone in index: %v", got)
	}
}
