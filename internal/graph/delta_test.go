package graph

import (
	"errors"
	"testing"

	"repro/internal/value"
)

func TestChangeSetConflict(t *testing.T) {
	g := New()
	n := g.CreateNode(nil, nil)
	cs := NewChangeSet()
	if err := cs.SetProp(NodeRef(n.ID), "id", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Same value twice: fine (including across Int/Float equivalence).
	if err := cs.SetProp(NodeRef(n.ID), "id", value.Float(1.0)); err != nil {
		t.Fatalf("equivalent re-set should not conflict: %v", err)
	}
	// Different value: conflict (Example 2 of the paper).
	err := cs.SetProp(NodeRef(n.ID), "id", value.Int(2))
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConflictError, got %v", err)
	}
	if ce.Key != "id" {
		t.Errorf("conflict key = %q", ce.Key)
	}
	if ce.Error() == "" {
		t.Error("empty conflict message")
	}
	// Different keys and different entities never conflict.
	if err := cs.SetProp(NodeRef(n.ID), "other", value.Int(9)); err != nil {
		t.Error(err)
	}
	if err := cs.SetProp(NodeRef(n.ID+1), "id", value.Int(7)); err != nil {
		t.Error(err)
	}
}

func TestChangeSetNullConflicts(t *testing.T) {
	cs := NewChangeSet()
	ref := NodeRef(1)
	if err := cs.SetProp(ref, "k", value.NullValue); err != nil {
		t.Fatal(err)
	}
	if err := cs.RemoveProp(ref, "k"); err != nil {
		t.Fatalf("remove after null set should not conflict: %v", err)
	}
	if err := cs.SetProp(ref, "k", value.Int(1)); err == nil {
		t.Error("null vs 1 should conflict")
	}
}

func TestChangeSetApply(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"Old"}, value.Map{"x": value.Int(1), "y": value.Int(2)})
	b := g.CreateNode(nil, nil)
	r, _ := g.CreateRel(a.ID, b.ID, "T", value.Map{"w": value.Int(1)})

	cs := NewChangeSet()
	cs.SetProp(NodeRef(a.ID), "x", value.Int(10))
	cs.RemoveProp(NodeRef(a.ID), "y")
	cs.SetProp(RelRef(r.ID), "w", value.Int(20))
	cs.AddLabel(a.ID, "New")
	cs.RemoveLabel(a.ID, "Old")
	if cs.Len() != 5 {
		t.Errorf("Len = %d, want 5", cs.Len())
	}
	if err := cs.Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.Node(a.ID).Props["x"] != value.Int(10) {
		t.Error("x not applied")
	}
	if _, has := g.Node(a.ID).Props["y"]; has {
		t.Error("y not removed")
	}
	if g.Rel(r.ID).Props["w"] != value.Int(20) {
		t.Error("rel prop not applied")
	}
	if !g.Node(a.ID).HasLabel("New") || g.Node(a.ID).HasLabel("Old") {
		t.Error("labels not applied")
	}
}

func TestChangeSetApplyMissingEntity(t *testing.T) {
	g := New()
	cs := NewChangeSet()
	cs.SetProp(NodeRef(42), "x", value.Int(1))
	if err := cs.Apply(g); err == nil {
		t.Error("apply to missing node should fail")
	}
	cs2 := NewChangeSet()
	cs2.SetProp(RelRef(42), "x", value.Int(1))
	if err := cs2.Apply(g); err == nil {
		t.Error("apply to missing rel should fail")
	}
}

func TestDeleteSetStrictCheck(t *testing.T) {
	g := New()
	u := g.CreateNode([]string{"User"}, nil)
	p := g.CreateNode([]string{"Product"}, nil)
	r, _ := g.CreateRel(u.ID, p.ID, "ORDERED", nil)

	// Deleting u alone must fail the check.
	d := NewDeleteSet()
	d.AddNode(u.ID)
	var de *DanglingError
	if err := d.Check(g); !errors.As(err, &de) {
		t.Fatalf("Check: got %v, want DanglingError", err)
	}

	// Deleting u together with its relationship passes.
	d.AddRel(r.ID)
	if err := d.Check(g); err != nil {
		t.Fatalf("Check with rel included: %v", err)
	}
	if err := d.Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 || g.NumRels() != 0 {
		t.Errorf("after apply: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeleteSetExpand(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	b := g.CreateNode(nil, nil)
	c := g.CreateNode(nil, nil)
	g.CreateRel(a.ID, b.ID, "T", nil)
	g.CreateRel(c.ID, a.ID, "T", nil)
	g.CreateRel(b.ID, c.ID, "T", nil) // not incident to a

	d := NewDeleteSet()
	d.AddNode(a.ID)
	d.Expand(g)
	if len(d.Rels()) != 2 {
		t.Errorf("Expand collected %d rels, want 2", len(d.Rels()))
	}
	if err := d.Check(g); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Errorf("after apply: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
}

func TestDeleteSetAccessors(t *testing.T) {
	d := NewDeleteSet()
	d.AddNode(3)
	d.AddNode(1)
	d.AddRel(7)
	if !d.HasNode(3) || d.HasNode(2) || !d.HasRel(7) || d.HasRel(1) {
		t.Error("Has accessors wrong")
	}
	ns := d.Nodes()
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 3 {
		t.Errorf("Nodes = %v", ns)
	}
}
