package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/value"
)

// FuzzWALRecordRoundTrip throws arbitrary bytes at the WAL record
// decoder. Anything it rejects is fine; anything it accepts must
// re-encode canonically (decode∘encode is the identity on encoded
// records) and must apply to an empty graph without panicking.
func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{walRecVersion})
	// Real records exercising every section: run a workload against a
	// durable store and lift the payloads back out of its log.
	dir := f.TempDir()
	st, wal, err := Recover(dir, Durability{})
	if err != nil {
		f.Fatal(err)
	}
	mutateAll(f, st)
	if err := wal.Close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		f.Fatal(err)
	}
	for rest := raw[len(walMagic):]; len(rest) >= 8; {
		n := binary.LittleEndian.Uint32(rest[0:4])
		payload := rest[8 : 8+n]
		f.Add(append([]byte(nil), payload...))
		rest = rest[8+n:]
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data)
		if err != nil {
			return
		}
		b1, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		rec2, err := decodeRecord(b1)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		b2, err := encodeRecord(rec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("record encoding is not canonical")
		}
		// Applying a decoder-accepted record may fail (it can reference
		// entities that do not exist) but must never panic or corrupt.
		g := New()
		_ = rec.apply(g)
		_ = g.Validate()
	})
}

// FuzzBinaryValueRoundTrip fuzzes the shared binary value codec that
// both the WAL and the spill files use.
func FuzzBinaryValueRoundTrip(f *testing.F) {
	encode := func(v value.Value) ([]byte, error) {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteBinaryValue(w, v); err != nil {
			return nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	for _, v := range []value.Value{
		value.NullValue, value.Bool(true), value.Int(-7), value.Float(2.5),
		value.String("hello"), value.List{value.Int(1), value.String("x")},
		value.Map{"k": value.Float(1.5)},
	} {
		b, err := encode(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadBinaryValue(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		b1, err := encode(v)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		v2, err := ReadBinaryValue(bufio.NewReader(bytes.NewReader(b1)))
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		b2, err := encode(v2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("value encoding is not canonical")
		}
	})
}
