package graph

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

func pair(t *testing.T, build func(g *Graph)) (*Graph, *Graph) {
	t.Helper()
	a, b := New(), New()
	build(a)
	build(b)
	return a, b
}

func TestIsomorphicBasic(t *testing.T) {
	a, b := pair(t, func(g *Graph) {
		u := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(1)})
		p := g.CreateNode([]string{"Product"}, nil)
		g.CreateRel(u.ID, p.ID, "ORDERED", nil)
	})
	if !Isomorphic(a, b) {
		t.Error("identically built graphs should be isomorphic")
	}
	if IsoMapping(a, b) == nil {
		t.Error("IsoMapping should find a witness")
	}
}

func TestIsomorphicIDRenaming(t *testing.T) {
	// Build the same shape with different insertion orders so ids differ.
	a := New()
	u := a.CreateNode([]string{"User"}, value.Map{"id": value.Int(1)})
	p := a.CreateNode([]string{"Product"}, value.Map{"id": value.Int(2)})
	a.CreateRel(u.ID, p.ID, "ORDERED", nil)

	b := New()
	p2 := b.CreateNode([]string{"Product"}, value.Map{"id": value.Int(2)})
	u2 := b.CreateNode([]string{"User"}, value.Map{"id": value.Int(1)})
	b.CreateRel(u2.ID, p2.ID, "ORDERED", nil)

	if !Isomorphic(a, b) {
		t.Error("graphs differing only in id assignment should be isomorphic")
	}
}

func TestNotIsomorphic(t *testing.T) {
	a := New()
	u := a.CreateNode([]string{"User"}, nil)
	p := a.CreateNode([]string{"Product"}, nil)
	a.CreateRel(u.ID, p.ID, "ORDERED", nil)

	// Different direction.
	b := New()
	u2 := b.CreateNode([]string{"User"}, nil)
	p2 := b.CreateNode([]string{"Product"}, nil)
	b.CreateRel(p2.ID, u2.ID, "ORDERED", nil)
	if Isomorphic(a, b) {
		t.Error("direction flip should break isomorphism")
	}

	// Different counts.
	c := New()
	c.CreateNode([]string{"User"}, nil)
	if Isomorphic(a, c) {
		t.Error("different node counts should break isomorphism")
	}

	// Different property.
	d := New()
	u3 := d.CreateNode([]string{"User"}, value.Map{"x": value.Int(1)})
	p3 := d.CreateNode([]string{"Product"}, nil)
	d.CreateRel(u3.ID, p3.ID, "ORDERED", nil)
	if Isomorphic(a, d) {
		t.Error("extra property should break isomorphism")
	}

	// Different rel type.
	e := New()
	u4 := e.CreateNode([]string{"User"}, nil)
	p4 := e.CreateNode([]string{"Product"}, nil)
	e.CreateRel(u4.ID, p4.ID, "OFFERS", nil)
	if Isomorphic(a, e) {
		t.Error("different rel type should break isomorphism")
	}
}

func TestIsomorphicParallelEdges(t *testing.T) {
	// Multi-edges: two identical ORDERED rels vs one must differ.
	a := New()
	u := a.CreateNode(nil, nil)
	p := a.CreateNode(nil, nil)
	a.CreateRel(u.ID, p.ID, "T", nil)
	a.CreateRel(u.ID, p.ID, "T", nil)

	b := New()
	u2 := b.CreateNode(nil, nil)
	p2 := b.CreateNode(nil, nil)
	b.CreateRel(u2.ID, p2.ID, "T", nil)
	if Isomorphic(a, b) {
		t.Error("edge multiplicity should matter")
	}
	b.CreateRel(u2.ID, p2.ID, "T", nil)
	if !Isomorphic(a, b) {
		t.Error("equal multi-edge graphs should match")
	}
}

func TestIsomorphicSymmetricShape(t *testing.T) {
	// A triangle where all nodes look identical: needs real backtracking.
	build := func(perm []int) *Graph {
		g := New()
		var ids []NodeID
		for i := 0; i < 3; i++ {
			ids = append(ids, g.CreateNode([]string{"X"}, nil).ID)
		}
		g.CreateRel(ids[perm[0]], ids[perm[1]], "E", nil)
		g.CreateRel(ids[perm[1]], ids[perm[2]], "E", nil)
		g.CreateRel(ids[perm[2]], ids[perm[0]], "E", nil)
		return g
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if !Isomorphic(a, b) {
		t.Error("rotated triangles should be isomorphic")
	}
	// A path of 3 is not a triangle.
	c := New()
	var ids []NodeID
	for i := 0; i < 3; i++ {
		ids = append(ids, c.CreateNode([]string{"X"}, nil).ID)
	}
	c.CreateRel(ids[0], ids[1], "E", nil)
	c.CreateRel(ids[1], ids[2], "E", nil)
	c.CreateRel(ids[0], ids[2], "E", nil) // different orientation than triangle cycle
	if Isomorphic(a, c) {
		t.Error("directed cycle vs non-cycle should differ")
	}
}

func TestIsomorphicRandomizedPermutation(t *testing.T) {
	// Property: permuting construction order preserves isomorphism.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 8
		type edge struct{ s, t int }
		var edges []edge
		for i := 0; i < 12; i++ {
			edges = append(edges, edge{rng.Intn(n), rng.Intn(n)})
		}
		build := func(order []int) *Graph {
			g := New()
			ids := make([]NodeID, n)
			for _, i := range order {
				ids[i] = g.CreateNode([]string{"N"}, value.Map{"grp": value.Int(int64(i % 3))}).ID
			}
			for _, e := range edges {
				g.CreateRel(ids[e.s], ids[e.t], "E", nil)
			}
			return g
		}
		order1 := rng.Perm(n)
		order2 := rng.Perm(n)
		a, b := build(order1), build(order2)
		if !Isomorphic(a, b) {
			t.Fatalf("trial %d: permuted builds not isomorphic", trial)
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	a, b := pair(t, func(g *Graph) {
		x := g.CreateNode([]string{"A"}, value.Map{"k": value.Int(1)})
		y := g.CreateNode([]string{"B"}, nil)
		g.CreateRel(x.ID, y.ID, "R", value.Map{"w": value.Float(1)})
	})
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprints of identical builds differ")
	}
	b.CreateNode([]string{"C"}, nil)
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("fingerprints should differ after mutation")
	}
}

func TestStats(t *testing.T) {
	g := New()
	u := g.CreateNode([]string{"User"}, nil)
	p := g.CreateNode([]string{"Product"}, nil)
	g.CreateNode([]string{"Product"}, nil)
	g.CreateRel(u.ID, p.ID, "ORDERED", nil)
	s := ComputeStats(g)
	if s.Nodes != 3 || s.Rels != 1 {
		t.Errorf("stats counts: %+v", s)
	}
	if s.Labels["Product"] != 2 || s.Labels["User"] != 1 {
		t.Errorf("label counts: %+v", s.Labels)
	}
	if s.RelTypes["ORDERED"] != 1 {
		t.Errorf("rel type counts: %+v", s.RelTypes)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}
