package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/value"
)

func TestJSONRoundTrip(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"User", "Admin"}, value.Map{
		"id":    value.Int(89),
		"name":  value.String("Bob"),
		"score": value.Float(1.5),
		"ok":    value.Bool(true),
		"tags":  value.List{value.String("x"), value.Int(2), value.NullValue},
		"meta":  value.Map{"k": value.Int(1)},
	})
	b := g.CreateNode(nil, nil)
	if _, err := g.CreateRel(a.ID, b.ID, "ORDERED", value.Map{"w": value.Float(0.25)}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(g) != Fingerprint(g2) {
		t.Error("round trip changed the graph")
	}
	// IDs preserved exactly.
	if g2.Node(a.ID) == nil || g2.Node(b.ID) == nil {
		t.Error("ids not preserved")
	}
	// Counters resume above the maximum.
	n := g2.CreateNode(nil, nil)
	if n.ID <= b.ID {
		t.Errorf("id counter did not resume: %d", n.ID)
	}
	if err := g2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJSONSpecialFloats(t *testing.T) {
	g := New()
	g.CreateNode([]string{"F"}, value.Map{
		"nan":  value.Float(math.NaN()),
		"pinf": value.Float(math.Inf(1)),
		"ninf": value.Float(math.Inf(-1)),
	})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := g2.Node(g2.NodeIDs()[0])
	if !math.IsNaN(float64(n.Props["nan"].(value.Float))) {
		t.Error("NaN lost")
	}
	if !math.IsInf(float64(n.Props["pinf"].(value.Float)), 1) {
		t.Error("+Inf lost")
	}
	if !math.IsInf(float64(n.Props["ninf"].(value.Float)), -1) {
		t.Error("-Inf lost")
	}
}

func TestJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`not json`,
		`{"nodes": [{"id": 0}]}`,            // bad id
		`{"nodes": [{"id": 1}, {"id": 1}]}`, // dup id
		`{"nodes": [{"id": 1}], "rels": [{"id": 1, "type": "T", "src": 1, "tgt": 9}]}`,                                             // dangling
		`{"nodes": [{"id": 1}], "rels": [{"id": 1, "type": "", "src": 1, "tgt": 1}]}`,                                              // no type
		`{"nodes": [{"id": 1}], "rels": [{"id": 0, "type": "T", "src": 1, "tgt": 1}]}`,                                             // bad rel id
		`{"nodes": [{"id": 1}], "rels": [{"id": 1, "type": "T", "src": 1, "tgt": 1}, {"id": 1, "type": "T", "src": 1, "tgt": 1}]}`, // dup rel
		`{"nodes": [{"id": 1, "props": {"x": {}}}]}`,                                                                               // malformed value
	}
	for _, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("ReadJSON(%q): expected error", src)
		}
	}
}

func TestJSONRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := New()
		for i := 0; i < 15; i++ {
			randomMutation(rng, g)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if Fingerprint(g) != Fingerprint(g2) {
			t.Fatalf("trial %d: round trip changed the graph", trial)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(1)})
	b := g.CreateNode([]string{"Product"}, nil)
	if _, err := g.CreateRel(a.ID, b.ID, "ORDERED", value.Map{"qty": value.Int(2)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "figure"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", ":User", ":ORDERED", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
