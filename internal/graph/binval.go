package graph

// A compact binary codec for runtime values, shared by the executor's
// spill files (internal/plan) and the write-ahead log (wal.go). One
// byte of type tag, then a type-specific payload: varint integers,
// floats by bit pattern (NaN and the infinities round-trip exactly),
// length-prefixed strings, recursively encoded lists and maps (map
// keys in sorted order, so the encoding of a value is canonical), and
// graph entities by id only — an entity value is a reference into some
// graph, and each consumer resolves ids against its own.
//
// The format is internal and versioned by its container (the spill
// file lives for one query; the WAL carries a file-level magic), so
// there is no per-value version byte.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/value"
)

const (
	binTagNull byte = iota
	binTagFalse
	binTagTrue
	binTagInt
	binTagFloat
	binTagString
	binTagList
	binTagMap
	binTagNode
	binTagRel
	binTagPath
)

// maxBinaryLen bounds any single length prefix (string bytes, list or
// map elements) the decoder will honour. Real values are far smaller;
// the bound exists so a corrupt or hostile stream cannot make the
// decoder attempt a multi-gigabyte allocation before the short read
// surfaces.
const maxBinaryLen = 1 << 30

// binAllocChunk caps the decoder's upfront allocation for one
// length-prefixed item: claimed lengths beyond it are paid for
// incrementally as bytes actually arrive, so a lying length prefix
// costs one chunk, not the claim.
const binAllocChunk = 1 << 20

// WriteVarint appends x to w in signed varint encoding.
func WriteVarint(w *bufio.Writer, x int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	_, err := w.Write(buf[:n])
	return err
}

// WriteUvarint appends x to w in unsigned varint encoding.
func WriteUvarint(w *bufio.Writer, x uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	_, err := w.Write(buf[:n])
	return err
}

// WriteBinaryString appends a length-prefixed string to w.
func WriteBinaryString(w *bufio.Writer, s string) error {
	if err := WriteUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// ReadBinaryString reads a length-prefixed string written by
// WriteBinaryString.
func ReadBinaryString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxBinaryLen {
		return "", fmt.Errorf("graph: string length %d exceeds codec limit", n)
	}
	if n <= binAllocChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	// Large claim: grow as bytes actually arrive.
	var b bytes.Buffer
	for read := uint64(0); read < n; {
		c := n - read
		if c > binAllocChunk {
			c = binAllocChunk
		}
		if _, err := io.CopyN(&b, r, int64(c)); err != nil {
			return "", err
		}
		read += c
	}
	return b.String(), nil
}

// WriteBinaryValue encodes one runtime value to w in the shared binary
// format. Every value kind the engine produces is covered: floats
// round-trip by bit pattern, entities and paths encode by id,
// lists/maps recurse (map keys sorted, so encoding is canonical).
func WriteBinaryValue(w *bufio.Writer, v value.Value) error {
	switch x := v.(type) {
	case nil, value.Null:
		return w.WriteByte(binTagNull)
	case value.Bool:
		if x {
			return w.WriteByte(binTagTrue)
		}
		return w.WriteByte(binTagFalse)
	case value.Int:
		if err := w.WriteByte(binTagInt); err != nil {
			return err
		}
		return WriteVarint(w, int64(x))
	case value.Float:
		if err := w.WriteByte(binTagFloat); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(x)))
		_, err := w.Write(buf[:])
		return err
	case value.String:
		if err := w.WriteByte(binTagString); err != nil {
			return err
		}
		return WriteBinaryString(w, string(x))
	case value.Node:
		if err := w.WriteByte(binTagNode); err != nil {
			return err
		}
		return WriteVarint(w, x.ID)
	case value.Rel:
		if err := w.WriteByte(binTagRel); err != nil {
			return err
		}
		return WriteVarint(w, x.ID)
	case value.Path:
		if err := w.WriteByte(binTagPath); err != nil {
			return err
		}
		if err := WriteUvarint(w, uint64(len(x.Nodes))); err != nil {
			return err
		}
		for _, id := range x.Nodes {
			if err := WriteVarint(w, id); err != nil {
				return err
			}
		}
		if err := WriteUvarint(w, uint64(len(x.Rels))); err != nil {
			return err
		}
		for _, id := range x.Rels {
			if err := WriteVarint(w, id); err != nil {
				return err
			}
		}
		return nil
	case value.List:
		if err := w.WriteByte(binTagList); err != nil {
			return err
		}
		if err := WriteUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		for _, e := range x {
			if err := WriteBinaryValue(w, e); err != nil {
				return err
			}
		}
		return nil
	case value.Map:
		if err := w.WriteByte(binTagMap); err != nil {
			return err
		}
		if err := WriteUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		for _, k := range x.Keys() {
			if err := WriteBinaryString(w, k); err != nil {
				return err
			}
			if err := WriteBinaryValue(w, x[k]); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("graph: cannot binary-encode %T", v)
	}
}

// binCount reads an element count, rejecting claims beyond the codec
// limit; preallocation is separately capped so a lying count costs at
// most one chunk of memory before the short read surfaces.
func binCount(r *bufio.Reader) (uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if n > maxBinaryLen {
		return 0, fmt.Errorf("graph: element count %d exceeds codec limit", n)
	}
	return n, nil
}

// binPrealloc bounds an upfront slice/map allocation for a claimed
// element count (each element costs at least one encoded byte, so
// honest large counts will simply grow as they arrive).
func binPrealloc(n uint64) int {
	if n > 4096 {
		return 4096
	}
	return int(n)
}

// ReadBinaryValue decodes one value written by WriteBinaryValue.
func ReadBinaryValue(r *bufio.Reader) (value.Value, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case binTagNull:
		return value.NullValue, nil
	case binTagFalse:
		return value.Bool(false), nil
	case binTagTrue:
		return value.Bool(true), nil
	case binTagInt:
		x, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		return value.Int(x), nil
	case binTagFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case binTagString:
		s, err := ReadBinaryString(r)
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	case binTagNode:
		id, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		return value.Node{ID: id}, nil
	case binTagRel:
		id, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		return value.Rel{ID: id}, nil
	case binTagPath:
		nn, err := binCount(r)
		if err != nil {
			return nil, err
		}
		p := value.Path{Nodes: make([]int64, 0, binPrealloc(nn))}
		for i := uint64(0); i < nn; i++ {
			id, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			p.Nodes = append(p.Nodes, id)
		}
		nr, err := binCount(r)
		if err != nil {
			return nil, err
		}
		p.Rels = make([]int64, 0, binPrealloc(nr))
		for i := uint64(0); i < nr; i++ {
			id, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			p.Rels = append(p.Rels, id)
		}
		return p, nil
	case binTagList:
		n, err := binCount(r)
		if err != nil {
			return nil, err
		}
		l := make(value.List, 0, binPrealloc(n))
		for i := uint64(0); i < n; i++ {
			e, err := ReadBinaryValue(r)
			if err != nil {
				return nil, err
			}
			l = append(l, e)
		}
		return l, nil
	case binTagMap:
		n, err := binCount(r)
		if err != nil {
			return nil, err
		}
		m := make(value.Map, binPrealloc(n))
		for i := uint64(0); i < n; i++ {
			k, err := ReadBinaryString(r)
			if err != nil {
				return nil, err
			}
			if m[k], err = ReadBinaryValue(r); err != nil {
				return nil, err
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("graph: unknown binary value tag %d", tag)
	}
}
