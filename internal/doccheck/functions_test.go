package doccheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/expr"
)

// funcEntry matches a documented function reference like `round(x [, n])`
// inside the marker-delimited functions section of docs/language.md.
var funcEntry = regexp.MustCompile("`([A-Za-z][A-Za-z0-9]*)\\(")

// functionsSection extracts the text between the functions:begin and
// functions:end markers of the language reference.
func functionsSection(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "language.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	const begin, end = "<!-- functions:begin -->", "<!-- functions:end -->"
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("docs/language.md: missing or misordered %s / %s markers", begin, end)
	}
	return doc[i+len(begin) : j]
}

// TestEveryFunctionIsDocumented cross-checks the expression registry
// against the "Functions" section of docs/language.md in both
// directions: a registered function without a doc entry, or a doc
// entry naming no registered function, fails. This is the contract
// that keeps the language reference in lockstep with the engine.
func TestEveryFunctionIsDocumented(t *testing.T) {
	section := functionsSection(t)
	documented := map[string]bool{}
	for _, m := range funcEntry.FindAllStringSubmatch(section, -1) {
		documented[strings.ToLower(m[1])] = true
	}
	for _, d := range expr.Defs() {
		if !documented[strings.ToLower(d.Name)] {
			t.Errorf("function %s() is registered but has no entry in docs/language.md", d.Name)
		}
	}
	for name := range documented {
		if expr.LookupFunc(name) == nil {
			t.Errorf("docs/language.md documents %s() but the registry has no such function", name)
		}
	}
}

// TestRegistryMetadataComplete enforces that every registry entry
// carries the metadata the surfaces rely on: a signature, a one-line
// doc, and coherent arity bounds.
func TestRegistryMetadataComplete(t *testing.T) {
	for _, d := range expr.Defs() {
		if d.Sig == "" {
			t.Errorf("%s: empty Sig", d.Name)
		}
		if d.Doc == "" {
			t.Errorf("%s: empty Doc", d.Name)
		}
		if d.MinArgs < 0 {
			t.Errorf("%s: negative MinArgs %d", d.Name, d.MinArgs)
		}
		if d.MaxArgs != -1 && d.MaxArgs < d.MinArgs {
			t.Errorf("%s: MaxArgs %d < MinArgs %d", d.Name, d.MaxArgs, d.MinArgs)
		}
		if !strings.HasPrefix(strings.ToLower(d.Sig), strings.ToLower(d.Name)+"(") {
			t.Errorf("%s: Sig %q does not start with the function name", d.Name, d.Sig)
		}
		if d.Total && !d.Pure && d.Name != "rand" && d.Name != "timestamp" {
			// Total-but-impure is a suspicious combination: only the
			// nondeterministic environment readers qualify.
			t.Errorf("%s: Total but not Pure", d.Name)
		}
	}
}
