// Package doccheck enforces the repository's documentation contract:
// every exported symbol of the public API surface (packages cypher and
// cypherclient) and of the core internal layers (graph, match, server)
// carries a doc comment.
// It runs as an ordinary test, so `go test ./...` — and therefore CI —
// fails the moment an undocumented exported symbol lands.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// checkedPackages lists the directories whose exported symbols must be
// documented, relative to this package.
var checkedPackages = []string{
	filepath.Join("..", "..", "cypher"),
	filepath.Join("..", "..", "cypherclient"),
	filepath.Join("..", "graph"),
	filepath.Join("..", "match"),
	filepath.Join("..", "server"),
}

// TestExportedSymbolsAreDocumented parses each checked package and
// reports every exported type, function, method, constant and variable
// that lacks a doc comment. Grouped const/var declarations are fine
// when the group itself is documented.
func TestExportedSymbolsAreDocumented(t *testing.T) {
	for _, dir := range checkedPackages {
		fset := token.NewFileSet()
		notTest := func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
		pkgs, err := parser.ParseDir(fset, dir, notTest, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, missing := range undocumented(f) {
					pos := fset.Position(missing.pos)
					t.Errorf("%s:%d: exported %s %s has no doc comment",
						pos.Filename, pos.Line, missing.kind, missing.name)
				}
			}
		}
	}
}

type finding struct {
	kind string
	name string
	pos  token.Pos
}

// undocumented walks a file's top-level declarations and collects
// exported symbols without doc comments.
func undocumented(f *ast.File) []finding {
	var out []finding
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				out = append(out, finding{kind: kind, name: funcName(d), pos: d.Pos()})
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						out = append(out, finding{kind: "type", name: s.Name.Name, pos: s.Pos()})
					}
				case *ast.ValueSpec:
					// A documented group covers its members; otherwise
					// each exported spec needs its own comment.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							out = append(out, finding{kind: "value", name: n.Name, pos: n.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether a function is free-standing or a
// method on an exported type (methods on unexported types are not part
// of the API surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return fmt.Sprintf("%s.%s", id.Name, d.Name.Name)
	}
	return d.Name.Name
}
