package experiments

import (
	"strings"
	"testing"
)

// Every experiment must run and pass: these are the paper's figures.
func TestAllExperimentsPass(t *testing.T) {
	reports, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 11 {
		t.Fatalf("experiments = %d, want 11", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Title, strings.Join(r.Lines, "\n"))
		}
		if len(r.Lines) == 0 {
			t.Errorf("%s produced no output", r.ID)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) != 11 || ids[0] != "E01" || ids[10] != "E11" {
		t.Errorf("IDs = %v", ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("missing title for %s", id)
		}
	}
	if Title("nope") != "" {
		t.Error("unknown title should be empty")
	}
}

func TestSingleRun(t *testing.T) {
	r, err := Run("E05")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Errorf("E05 failed: %v", r.Lines)
	}
	joined := strings.Join(r.Lines, "\n")
	if !strings.Contains(joined, "Figure 6b") || !strings.Contains(joined, "Figure 6a") {
		t.Errorf("E05 report should reference both figures:\n%s", joined)
	}
}

func TestFigureGraphs(t *testing.T) {
	graphs, err := FigureGraphs()
	if err != nil {
		t.Fatal(err)
	}
	wantShapes := map[string][2]int{ // nodes, rels
		"fig1":  {6, 6},
		"fig6a": {5, 6},
		"fig6b": {5, 4},
		"fig7a": {12, 6},
		"fig7b": {8, 4},
		"fig7c": {4, 4},
		"fig8a": {6, 4},
		"fig8b": {5, 4},
		"fig9a": {4, 5},
		"fig9b": {4, 4},
	}
	if len(graphs) != len(wantShapes) {
		t.Fatalf("figures = %d, want %d", len(graphs), len(wantShapes))
	}
	for name, want := range wantShapes {
		g, ok := graphs[name]
		if !ok {
			t.Errorf("missing figure %s", name)
			continue
		}
		if g.NumNodes() != want[0] || g.NumRels() != want[1] {
			t.Errorf("%s: %d nodes / %d rels, want %d / %d",
				name, g.NumNodes(), g.NumRels(), want[0], want[1])
		}
	}
	names := FigureNames()
	if len(names) != len(wantShapes) || names[0] != "fig1" {
		t.Errorf("FigureNames = %v", names)
	}
}
