package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/graph"
)

// FigureGraphs regenerates the graphs of the paper's figures keyed by
// figure name ("fig6a", "fig6b", "fig7a", "fig7b", "fig7c", "fig8a",
// "fig8b", "fig9a", "fig9b", plus "fig1" for the running example).
// cmd/experiments -dot uses it to emit Graphviz renderings.
func FigureGraphs() (map[string]*graph.Graph, error) {
	out := make(map[string]*graph.Graph)

	fig1, _ := fixtures.Figure1()
	out["fig1"] = fig1

	// Figure 6: legacy MERGE under the two scan orders.
	for name, order := range map[string]core.ScanOrder{
		"fig6a": core.ScanReverse, // bottom-up: all three paths created
		"fig6b": core.ScanForward, // top-down: third record matches
	} {
		g, tbl, _ := fixtures.Example3()
		cfg := core.Config{Dialect: core.DialectCypher9, ScanOrder: order}
		if _, err := exec(cfg, g, example3Query, tbl); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = g
	}

	// Figure 7: Example 5 under Atomic, Grouping, Strong Collapse.
	for name, strategy := range map[string]core.MergeStrategy{
		"fig7a": core.StrategyAtomic,
		"fig7b": core.StrategyGrouping,
		"fig7c": core.StrategyStrongCollapse,
	} {
		g := graph.New()
		cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: strategy}
		if _, err := exec(cfg, g, `MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`, fixtures.Example5Table()); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = g
	}

	// Figure 8: Example 6 under Weak Collapse vs Collapse.
	for name, strategy := range map[string]core.MergeStrategy{
		"fig8a": core.StrategyWeakCollapse,
		"fig8b": core.StrategyCollapse,
	} {
		g := graph.New()
		cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: strategy}
		if _, err := exec(cfg, g,
			`MERGE ALL (:User{id:bid})-[:ORDERED]->(:Product{id:pid})<-[:OFFERS]-(:User{id:sid})`,
			fixtures.Example6Table()); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = g
	}

	// Figure 9: Example 7 under Collapse vs Strong Collapse.
	for name, strategy := range map[string]core.MergeStrategy{
		"fig9a": core.StrategyCollapse,
		"fig9b": core.StrategyStrongCollapse,
	} {
		g, tbl, _ := fixtures.Example7()
		cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: strategy}
		if _, err := exec(cfg, g,
			`MERGE ALL (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)`, tbl); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = g
	}

	return out, nil
}

// FigureNames lists the available figure names in order.
func FigureNames() []string {
	gs, err := FigureGraphs()
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(gs))
	for n := range gs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
