// Package experiments regenerates every figure and worked example of
// "Updating Graph Databases with Cypher" (Green et al., PVLDB 2019) and
// reports paper-expected versus measured outcomes. The experiment ids
// E01-E11 are indexed in DESIGN.md; cmd/experiments is the CLI driver and
// EXPERIMENTS.md records a captured run.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/parser"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/workload"
)

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	Lines []string
	Pass  bool
}

func (r *Report) check(ok bool, format string, args ...any) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		r.Pass = false
	}
	r.Lines = append(r.Lines, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
}

func (r *Report) note(format string, args ...any) {
	r.Lines = append(r.Lines, "       "+fmt.Sprintf(format, args...))
}

type experiment struct {
	id    string
	title string
	run   func(r *Report) error
}

var registry = []experiment{
	{"E01", "Figure 1 and Queries (1)-(5), Sections 2-3", runE01},
	{"E02", "Example 1: SET swap (legacy vs revised)", runE02},
	{"E03", "Example 2: ambiguous SET (legacy nondeterminism vs revised error)", runE03},
	{"E04", "Section 4.2: DELETE atomicity violation (legacy) vs strict DELETE (revised)", runE04},
	{"E05", "Example 3 / Figure 6: legacy MERGE order dependence", runE05},
	{"E06", "Example 4: proposed MERGE semantics on the Figure 6 workload", runE06},
	{"E07", "Example 5 / Figure 7: order import under all MERGE strategies", runE07},
	{"E08", "Example 6 / Figure 8: Weak Collapse vs Collapse", runE08},
	{"E09", "Example 7 / Figure 9: Collapse vs Strong Collapse; iso vs homomorphism re-match", runE09},
	{"E10", "Figures 2-5 vs Figure 10: grammar acceptance matrix", runE10},
	{"E11", "Section 8 determinism: permutation invariance up to id renaming", runE11},
}

// IDs lists the experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Title returns the title for an experiment id.
func Title(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.title
		}
	}
	return ""
}

// Run executes one experiment by id.
func Run(id string) (*Report, error) {
	for _, e := range registry {
		if e.id == id {
			r := &Report{ID: e.id, Title: e.title, Pass: true}
			if err := e.run(r); err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			return r, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (known: %v)", id, IDs())
}

// RunAll executes every experiment in order.
func RunAll() ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		r, err := Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// --- helpers ---------------------------------------------------------

func exec(cfg core.Config, g *graph.Graph, query string, t0 *table.Table) (*core.Result, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(cfg).ExecuteWithTable(g, stmt, nil, t0)
}

func shape(g *graph.Graph) string {
	return fmt.Sprintf("%d nodes / %d rels", g.NumNodes(), g.NumRels())
}

// --- E01: running example --------------------------------------------

func runE01(r *Report) error {
	g, _ := fixtures.Figure1()
	r.note("initial graph (Figure 1 solid lines): %s", graph.ComputeStats(g))
	r.check(g.NumNodes() == 6 && g.NumRels() == 6, "Figure 1 base: paper 6 nodes / 6 rels, measured %s", shape(g))

	cfg := core.Config{Dialect: core.DialectCypher9}

	res, err := exec(cfg, g, `
		MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
		WHERE p.name = "laptop" RETURN v`, nil)
	if err != nil {
		return err
	}
	r.check(res.Table.Len() == 1, "Query (1): paper one record (v:v1), measured %d record(s)", res.Table.Len())

	if _, err := exec(cfg, g, `
		MATCH (u:User{id:89})
		CREATE (u)-[:ORDERED]->(:New_Product{id:0})`, nil); err != nil {
		return err
	}
	r.check(g.NumNodes() == 7 && g.NumRels() == 7,
		"Query (2): paper adds node p4 + ORDERED rel (dotted), measured %s", shape(g))

	if _, err := exec(cfg, g, `
		MATCH (p:New_Product{id:0})
		SET p:Product, p.id=120, p.name="smartphone"
		REMOVE p:New_Product`, nil); err != nil {
		return err
	}
	r.check(len(g.NodeIDsByLabel("New_Product")) == 0 && len(g.NodeIDsByLabel("Product")) == 4,
		"Query (3): paper relabels p4 to :Product with id 120, measured Products=%d New_Products=%d",
		len(g.NodeIDsByLabel("Product")), len(g.NodeIDsByLabel("New_Product")))

	_, err = exec(cfg, g, `MATCH (p:Product{id:120}) DELETE p`, nil)
	r.check(err != nil, "DELETE of attached p4: paper 'would fail', measured error=%v", err != nil)

	if _, err := exec(cfg, g, `MATCH ()-[rel]->(p:Product{id:120}) DELETE rel,p`, nil); err != nil {
		return err
	}
	r.check(g.NumNodes() == 6 && g.NumRels() == 6,
		"DELETE rel,p: paper removes p4 and its relationship, measured %s", shape(g))

	// Query (4): recreate then DETACH DELETE.
	if _, err := exec(cfg, g, `MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(:Product{id:120})`, nil); err != nil {
		return err
	}
	if _, err := exec(cfg, g, `MATCH (p:Product{id:120}) DETACH DELETE p`, nil); err != nil {
		return err
	}
	r.check(g.NumNodes() == 6 && g.NumRels() == 6, "Query (4) DETACH DELETE: measured %s", shape(g))

	// Query (5): MERGE creates v2 + OFFERS for the unoffered product.
	res, err = exec(cfg, g, `
		MATCH (p:Product)
		MERGE (p)<-[:OFFERS]-(v:Vendor)
		RETURN p,v`, nil)
	if err != nil {
		return err
	}
	r.check(res.Table.Len() == 3 && len(g.NodeIDsByLabel("Vendor")) == 2,
		"Query (5): paper returns 3 product/vendor pairs and creates v2 (dashed), measured %d rows, %d vendors",
		res.Table.Len(), len(g.NodeIDsByLabel("Vendor")))
	return nil
}

// --- E02: Example 1 ---------------------------------------------------

func runE02(r *Report) error {
	query := `
		MATCH (p1:Product{name:"laptop"}), (p2:Product{name:"tablet"})
		SET p1.id = p2.id, p2.id = p1.id`

	g, ids := fixtures.Figure1()
	if _, err := exec(core.Config{Dialect: core.DialectCypher9}, g, query, nil); err != nil {
		return err
	}
	laptop, tablet := g.Node(ids["p1"]).Props["id"], g.Node(ids["p3"]).Props["id"]
	r.check(laptop == value.Int(85) && tablet == value.Int(85),
		"legacy: paper 'both products bear the same ID', measured laptop=%v tablet=%v", laptop, tablet)

	g2, ids2 := fixtures.Figure1()
	if _, err := exec(core.Config{Dialect: core.DialectRevised}, g2, query, nil); err != nil {
		return err
	}
	laptop2, tablet2 := g2.Node(ids2["p1"]).Props["id"], g2.Node(ids2["p3"]).Props["id"]
	r.check(laptop2 == value.Int(85) && tablet2 == value.Int(125),
		"revised: paper 'should actually switch IDs', measured laptop=%v tablet=%v", laptop2, tablet2)
	return nil
}

// --- E03: Example 2 ---------------------------------------------------

func runE03(r *Report) error {
	query := `
		MATCH (p1:Product{id:85}),(p2:Product{id:125})
		SET p1.name = p2.name`

	outcomes := map[string]bool{}
	for _, order := range []core.ScanOrder{core.ScanForward, core.ScanReverse} {
		g, ids := fixtures.Figure1()
		if _, err := exec(core.Config{Dialect: core.DialectCypher9, ScanOrder: order}, g, query, nil); err != nil {
			return err
		}
		name, _ := value.AsString(g.Node(ids["p3"]).Props["name"])
		outcomes[string(name)] = true
	}
	var keys []string
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r.check(outcomes["laptop"] && outcomes["notebook"],
		"legacy: paper 'name set to either notebook or laptop' depending on order; measured outcomes %v", keys)

	g, _ := fixtures.Figure1()
	_, err := exec(core.Config{Dialect: core.DialectRevised}, g, query, nil)
	r.check(err != nil, "revised: paper 'should abort with an error'; measured error: %v", err)
	return nil
}

// --- E04: Section 4.2 -------------------------------------------------

func runE04(r *Report) error {
	query := `
		MATCH (user)-[order:ORDERED]->(product)
		DELETE user
		SET user.id = 999
		DELETE order
		RETURN user`

	build := func() *graph.Graph {
		g := graph.New()
		u := g.CreateNode([]string{"User"}, value.Map{"id": value.Int(89)})
		p := g.CreateNode([]string{"Product"}, nil)
		if _, err := g.CreateRel(u.ID, p.ID, "ORDERED", nil); err != nil {
			panic(err)
		}
		return g
	}

	g := build()
	res, err := exec(core.Config{Dialect: core.DialectCypher9}, g, query, nil)
	if err != nil {
		return err
	}
	_, isNodeRef := res.Table.Get(0, "user").(value.Node)
	r.check(isNodeRef && g.NumNodes() == 1,
		"legacy: paper 'goes through without an error and returns an empty node'; measured stale ref=%v, %s",
		isNodeRef, shape(g))
	r.note("mid-statement the graph held a dangling ORDERED relationship (paper: 'illegal state')")

	g2 := build()
	_, err = exec(core.Config{Dialect: core.DialectRevised}, g2, query, nil)
	r.check(err != nil, "revised: paper requires an error for non-detached delete; measured: %v", err)
	r.check(g2.NumNodes() == 2 && g2.NumRels() == 1, "revised: failed statement rolled back, measured %s", shape(g2))
	return nil
}

// --- E05: Example 3 / Figure 6 ----------------------------------------

const example3Query = `MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)`

func runE05(r *Report) error {
	runOrder := func(order core.ScanOrder) (*graph.Graph, error) {
		g, tbl, _ := fixtures.Example3()
		_, err := exec(core.Config{Dialect: core.DialectCypher9, ScanOrder: order}, g, example3Query, tbl)
		return g, err
	}
	topDown, err := runOrder(core.ScanForward)
	if err != nil {
		return err
	}
	bottomUp, err := runOrder(core.ScanReverse)
	if err != nil {
		return err
	}
	r.check(topDown.NumRels() == 4,
		"top-down: paper Figure 6b (u1->p->v2 matched after earlier creations), measured %s", shape(topDown))
	r.check(bottomUp.NumRels() == 6,
		"bottom-up: paper Figure 6a (all three paths created), measured %s", shape(bottomUp))
	r.check(!graph.Isomorphic(topDown, bottomUp),
		"the two orders differ (paper: 'the behavior of a MERGE clause may be nondeterministic')")
	return nil
}

// --- E06: Example 4 ---------------------------------------------------

func runE06(r *Report) error {
	cases := []struct {
		strategy core.MergeStrategy
		rels     int
		figure   string
	}{
		{core.StrategyAtomic, 6, "6a"},
		{core.StrategyGrouping, 6, "6a"},
		{core.StrategyWeakCollapse, 4, "6b"},
		{core.StrategyCollapse, 4, "6b"},
		{core.StrategyStrongCollapse, 4, "6b"},
	}
	for _, c := range cases {
		var graphs []*graph.Graph
		for _, order := range []core.ScanOrder{core.ScanForward, core.ScanReverse} {
			g, tbl, _ := fixtures.Example3()
			cfg := core.Config{Dialect: core.DialectCypher9, MergeStrategy: c.strategy, ScanOrder: order}
			if _, err := exec(cfg, g, example3Query, tbl); err != nil {
				return err
			}
			graphs = append(graphs, g)
		}
		orderFree := graph.Isomorphic(graphs[0], graphs[1])
		r.check(graphs[0].NumRels() == c.rels && orderFree,
			"%-15s paper Figure %s (%d rels), order-independent; measured %s, order-independent=%v",
			c.strategy.String()+":", c.figure, c.rels, shape(graphs[0]), orderFree)
	}
	return nil
}

// --- E07: Example 5 / Figure 7 ----------------------------------------

func runE07(r *Report) error {
	cases := []struct {
		strategy    core.MergeStrategy
		nodes, rels int
		figure      string
	}{
		{core.StrategyAtomic, 12, 6, "7a"},
		{core.StrategyGrouping, 8, 4, "7b"},
		{core.StrategyWeakCollapse, 4, 4, "7c"},
		{core.StrategyCollapse, 4, 4, "7c"},
		{core.StrategyStrongCollapse, 4, 4, "7c"},
	}
	for _, c := range cases {
		g := graph.New()
		cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: c.strategy}
		if _, err := exec(cfg, g, `MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`, fixtures.Example5Table()); err != nil {
			return err
		}
		r.check(g.NumNodes() == c.nodes && g.NumRels() == c.rels,
			"%-15s paper Figure %s (%d nodes / %d rels), measured %s",
			c.strategy.String()+":", c.figure, c.nodes, c.rels, shape(g))
	}
	r.note("Figure 7c detail: the two null-pid orders collapse onto one property-less Product node")
	return nil
}

// --- E08: Example 6 / Figure 8 ----------------------------------------

func runE08(r *Report) error {
	query := `MERGE ALL (:User{id:bid})-[:ORDERED]->(:Product{id:pid})<-[:OFFERS]-(:User{id:sid})`
	cases := []struct {
		strategy core.MergeStrategy
		nodes    int
		figure   string
	}{
		{core.StrategyAtomic, 6, "8a"},
		{core.StrategyGrouping, 6, "8a"},
		{core.StrategyWeakCollapse, 6, "8a"},
		{core.StrategyCollapse, 5, "8b"},
		{core.StrategyStrongCollapse, 5, "8b"},
	}
	for _, c := range cases {
		g := graph.New()
		cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: c.strategy}
		if _, err := exec(cfg, g, query, fixtures.Example6Table()); err != nil {
			return err
		}
		r.check(g.NumNodes() == c.nodes && g.NumRels() == 4,
			"%-15s paper Figure %s (%d nodes / 4 rels), measured %s",
			c.strategy.String()+":", c.figure, c.nodes, shape(g))
	}
	r.note("the two copies of :User{id:98} sit at different pattern positions; only (Strong) Collapse merges them")
	return nil
}

// --- E09: Example 7 / Figure 9 ----------------------------------------

func runE09(r *Report) error {
	query := `MERGE ALL (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)`
	runStrategy := func(s core.MergeStrategy) (*graph.Graph, error) {
		g, tbl, _ := fixtures.Example7()
		_, err := exec(core.Config{Dialect: core.DialectRevised, MergeStrategy: s}, g, query, tbl)
		return g, err
	}
	collapse, err := runStrategy(core.StrategyCollapse)
	if err != nil {
		return err
	}
	strong, err := runStrategy(core.StrategyStrongCollapse)
	if err != nil {
		return err
	}
	r.check(collapse.NumRels() == 5, "Collapse: paper Figure 9a (two p1->p2 :TO rels kept, 5 rels), measured %s", shape(collapse))
	r.check(strong.NumRels() == 4, "Strong Collapse: paper Figure 9b (the :TO rels collapse, 4 rels), measured %s", shape(strong))

	rematch := `MATCH (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt) RETURN a`
	res, err := exec(core.Config{Dialect: core.DialectRevised}, strong, rematch, nil)
	if err != nil {
		return err
	}
	r.check(res.Table.Len() == 0,
		"re-MATCH after Strong Collapse under isomorphism: paper 'no matches', measured %d", res.Table.Len())
	res, err = exec(core.Config{Dialect: core.DialectRevised, MatchMode: match.Homomorphism}, strong, rematch, nil)
	if err != nil {
		return err
	}
	r.check(res.Table.Len() > 0,
		"re-MATCH under homomorphism: paper 'will result in a positive match', measured %d row(s)", res.Table.Len())
	return nil
}

// --- E10: grammar matrix ----------------------------------------------

func runE10(r *Report) error {
	cases := []struct {
		desc    string
		src     string
		cypher9 bool
		revised bool
	}{
		{"reading after update without WITH", `CREATE (:A) MATCH (n) RETURN n`, false, true},
		{"reading after update with WITH", `CREATE (a:A) WITH a MATCH (n) RETURN n`, true, true},
		{"bare MERGE", `MERGE (a:A{id:1})`, true, false},
		{"MERGE ALL", `MERGE ALL (a:A)-[:T]->(b:B)`, false, true},
		{"MERGE SAME", `MERGE SAME (a:A)-[:T]->(b:B)`, false, true},
		{"MERGE ALL with pattern tuple", `MERGE ALL (a:A)-[:T]->(b), (c:C)-[:U]->(d)`, false, true},
		{"legacy MERGE with undirected rel", `MERGE (a:A)-[:T]-(b:B)`, true, false},
		{"MERGE SAME with undirected rel", `MERGE SAME (a:A)-[:T]-(b:B)`, false, false},
		{"CREATE with undirected rel", `CREATE (a)-[:T]-(b)`, false, false},
	}
	for _, c := range cases {
		stmt, err := parser.Parse(c.src)
		if err != nil {
			return fmt.Errorf("parse %q: %w", c.src, err)
		}
		got9 := core.Validate(stmt, core.DialectCypher9) == nil
		gotR := core.Validate(stmt, core.DialectRevised) == nil
		r.check(got9 == c.cypher9 && gotR == c.revised,
			"%-38s Cypher9 %-6v (want %v)   Figure-10 %-6v (want %v)",
			c.desc+":", got9, c.cypher9, gotR, c.revised)
	}
	r.note("note: RETURN directly after updates is accepted in both dialects; the literal Figure 2 grammar")
	r.note("would reject it, but the paper's own Query (5) uses it, so we follow the Section 4.4 prose")
	return nil
}

// --- E11: determinism at scale ----------------------------------------

func runE11(r *Report) error {
	const rows = 200
	imp := workload.DefaultOrderImport(rows)
	query := `MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`

	for _, s := range []core.MergeStrategy{
		core.StrategyAtomic, core.StrategyGrouping, core.StrategyStrongCollapse,
	} {
		var fp string
		same := true
		for seed := int64(1); seed <= 5; seed++ {
			tbl := imp.Build()
			tbl.Permute(workload.Shuffle(tbl.Len(), seed))
			g := graph.New()
			cfg := core.Config{Dialect: core.DialectRevised, MergeStrategy: s}
			if _, err := exec(cfg, g, query, tbl); err != nil {
				return err
			}
			f := graph.Fingerprint(g)
			if fp == "" {
				fp = f
			} else if f != fp {
				same = false
			}
		}
		r.check(same, "%-15s 5 random permutations of a %d-row import yield isomorphic graphs: %v",
			s.String()+":", rows, same)
	}

	// Legacy MERGE on the same workload: count distinct outcomes.
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 5; seed++ {
		g, tbl, _ := fixtures.Example3()
		tbl.Permute(workload.Shuffle(tbl.Len(), seed))
		cfg := core.Config{Dialect: core.DialectCypher9}
		if _, err := exec(cfg, g, example3Query, tbl); err != nil {
			return err
		}
		distinct[graph.Fingerprint(g)] = true
	}
	r.check(len(distinct) > 1,
		"legacy MERGE:    permutations of the Example 3 table yield %d distinct graphs (nondeterministic)", len(distinct))
	return nil
}
