// Package parser implements a recursive-descent parser for Cypher
// statements, covering the union of the Cypher 9 update grammar
// (Figures 2-5 of the paper) and the revised grammar (Figure 10):
// reading clauses, WITH/RETURN projections, UNWIND, LOAD CSV, CREATE,
// SET, REMOVE, (DETACH) DELETE, FOREACH, and the three MERGE forms
// (legacy MERGE, MERGE ALL, MERGE SAME).
//
// The parser deliberately accepts the superset grammar; the per-dialect
// restrictions that Section 4.4 of the paper contrasts (the WITH
// requirement between updating and reading clauses, the single
// possibly-undirected pattern of legacy MERGE, the directed pattern
// tuples of MERGE ALL/SAME) are enforced by the dialect validators in
// package core, so both grammars can be compared over one AST.
package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/token"
)

// Error is a parse error with position information.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Pos.Line, e.Pos.Column, e.Msg)
}

type parser struct {
	toks []token.Token
	pos  int
}

// Parse parses a complete Cypher statement.
func Parse(src string) (stmt *ast.Statement, err error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*Error); ok {
				stmt, err = nil, pe
				return
			}
			panic(r)
		}
	}()
	stmt = p.parseStatement()
	return stmt, nil
}

// ParseExpr parses a single expression (used by tests and the REPL).
func ParseExpr(src string) (expr ast.Expr, err error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*Error); ok {
				expr, err = nil, pe
				return
			}
			panic(r)
		}
	}()
	expr = p.parseExpr()
	p.expect(token.EOF)
	return expr, nil
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) peek() token.Token { return p.peekAt(1) }

// peekAt looks n tokens ahead, saturating at EOF.
func (p *parser) peekAt(n int) token.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(t token.Type) bool { return p.cur().Type == t }

func (p *parser) accept(t token.Type) bool {
	if p.at(t) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) next() token.Token {
	t := p.cur()
	if t.Type != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(t token.Type) token.Token {
	if !p.at(t) {
		p.errorf("expected %s, found %s", t, describe(p.cur()))
	}
	return p.next()
}

func describe(t token.Token) string {
	switch t.Type {
	case token.EOF:
		return "end of input"
	case token.Ident, token.Int, token.Float, token.String:
		return fmt.Sprintf("%s %q", t.Type, t.Lit)
	default:
		return fmt.Sprintf("%q", t.Type.String())
	}
}

func (p *parser) errorf(format string, args ...any) {
	panic(&Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
}

// isName reports whether the token can serve as a symbolic name.
// Keywords are allowed as names in positions where no ambiguity arises
// (labels, property keys, relationship types), following Cypher practice.
func isName(t token.Token) bool {
	return t.Type == token.Ident || t.Type.IsKeyword()
}

// name consumes a symbolic name token.
func (p *parser) name() string {
	if !isName(p.cur()) {
		p.errorf("expected name, found %s", describe(p.cur()))
	}
	return p.next().Lit
}

// softKeywords are reserved words that may nevertheless be used as
// variable names, because no clause or operator can begin with them in a
// variable position. The paper's own Section 4.2 example binds a
// relationship to the variable "order".
var softKeywords = map[token.Type]bool{
	token.ORDER: true, token.BY: true, token.ASC: true, token.DESC: true,
	token.SKIP: true, token.LIMIT: true, token.ON: true, token.SAME: true,
	token.CSV: true, token.FROM: true, token.HEADERS: true,
	token.FIELDTERMINATOR: true, token.STARTS: true, token.ENDS: true,
	token.CONTAINS: true,
	// Transaction keywords stay usable as variables: they are only
	// recognized as statements when they appear alone at statement start,
	// so `RETURN commit` keeps meaning a variable named commit.
	token.BEGIN: true, token.COMMIT: true, token.ROLLBACK: true,
	// Schema keywords likewise: CREATE INDEX ON / DROP INDEX ON are only
	// recognized at statement start, so `RETURN index` and a node
	// variable named drop keep working.
	token.INDEX: true, token.DROP: true,
}

// isVar reports whether the token can serve as a variable name.
func isVar(t token.Token) bool {
	return t.Type == token.Ident || softKeywords[t.Type]
}

// txnControl maps the transaction-control keywords to their statement
// kinds.
var txnControl = map[token.Type]ast.TxnControl{
	token.BEGIN:    ast.TxnBegin,
	token.COMMIT:   ast.TxnCommit,
	token.ROLLBACK: ast.TxnRollback,
}

// variable consumes a variable name.
func (p *parser) variable() string {
	if !isVar(p.cur()) {
		p.errorf("expected variable, found %s", describe(p.cur()))
	}
	return p.next().Lit
}

func (p *parser) parseStatement() *ast.Statement {
	// BEGIN / COMMIT / ROLLBACK are whole statements of their own
	// (transaction control); they take no clauses.
	if ctl, ok := txnControl[p.cur().Type]; ok && (p.peek().Type == token.EOF || p.peek().Type == token.Semi) {
		p.next()
		p.accept(token.Semi)
		p.expect(token.EOF)
		return &ast.Statement{TxnControl: ctl}
	}
	// CREATE INDEX ON :Label(prop) / DROP INDEX ON :Label(prop) are whole
	// schema statements. The ON lookahead keeps `CREATE index = (a)-...`
	// (a path variable named index) parsing as a CREATE clause.
	if p.at(token.CREATE) && p.peek().Type == token.INDEX && p.peekAt(2).Type == token.ON {
		return p.parseIndexStmt(false)
	}
	if p.at(token.DROP) {
		return p.parseIndexStmt(true)
	}
	stmt := &ast.Statement{}
	stmt.Queries = append(stmt.Queries, p.parseSingleQuery())
	for p.accept(token.UNION) {
		all := p.accept(token.ALL)
		stmt.UnionAll = append(stmt.UnionAll, all)
		stmt.Queries = append(stmt.Queries, p.parseSingleQuery())
	}
	p.accept(token.Semi)
	p.expect(token.EOF)
	return stmt
}

// parseIndexStmt parses CREATE INDEX ON :Label(prop) or
// DROP INDEX ON :Label(prop); the leading CREATE/DROP is current.
func (p *parser) parseIndexStmt(drop bool) *ast.Statement {
	p.next() // CREATE or DROP
	p.expect(token.INDEX)
	p.expect(token.ON)
	p.expect(token.Colon)
	is := &ast.IndexStmt{Drop: drop, Label: p.name()}
	p.expect(token.LParen)
	is.Prop = p.name()
	p.expect(token.RParen)
	p.accept(token.Semi)
	p.expect(token.EOF)
	return &ast.Statement{Index: is}
}

func (p *parser) parseSingleQuery() *ast.SingleQuery {
	q := &ast.SingleQuery{}
	for {
		c := p.parseClause()
		if c == nil {
			break
		}
		q.Clauses = append(q.Clauses, c)
		if _, isReturn := c.(*ast.ReturnClause); isReturn {
			break
		}
	}
	if len(q.Clauses) == 0 {
		p.errorf("expected a clause, found %s", describe(p.cur()))
	}
	return q
}

// parseClause parses one clause, or returns nil at a query boundary
// (EOF, UNION, or semicolon).
func (p *parser) parseClause() ast.Clause {
	switch p.cur().Type {
	case token.EOF, token.UNION, token.Semi:
		return nil
	case token.MATCH:
		p.next()
		return p.parseMatch(false)
	case token.OPTIONAL:
		p.next()
		p.expect(token.MATCH)
		return p.parseMatch(true)
	case token.UNWIND:
		p.next()
		e := p.parseExpr()
		p.expect(token.AS)
		return &ast.UnwindClause{Expr: e, Var: p.variable()}
	case token.LOAD:
		return p.parseLoadCSV()
	case token.WITH:
		p.next()
		w := &ast.WithClause{Projection: p.parseProjection()}
		if p.accept(token.WHERE) {
			w.Where = p.parseExpr()
		}
		return w
	case token.RETURN:
		p.next()
		return &ast.ReturnClause{Projection: p.parseProjection()}
	case token.CREATE:
		p.next()
		return &ast.CreateClause{Pattern: p.parsePattern()}
	case token.MERGE:
		p.next()
		return p.parseMerge()
	case token.SET:
		p.next()
		return &ast.SetClause{Items: p.parseSetItems()}
	case token.REMOVE:
		p.next()
		return p.parseRemove()
	case token.DELETE:
		p.next()
		return p.parseDelete(false)
	case token.DETACH:
		p.next()
		p.expect(token.DELETE)
		return p.parseDelete(true)
	case token.FOREACH:
		p.next()
		return p.parseForeach()
	default:
		p.errorf("expected a clause, found %s", describe(p.cur()))
		return nil
	}
}

func (p *parser) parseMatch(optional bool) ast.Clause {
	m := &ast.MatchClause{Optional: optional, Pattern: p.parsePattern()}
	if p.accept(token.WHERE) {
		m.Where = p.parseExpr()
	}
	return m
}

func (p *parser) parseLoadCSV() ast.Clause {
	p.expect(token.LOAD)
	p.expect(token.CSV)
	c := &ast.LoadCSVClause{}
	if p.accept(token.WITH) {
		p.expect(token.HEADERS)
		c.WithHeaders = true
	}
	p.expect(token.FROM)
	c.URL = p.parseExpr()
	p.expect(token.AS)
	c.Var = p.variable()
	if p.accept(token.FIELDTERMINATOR) {
		c.FieldTerm = p.expect(token.String).Lit
	}
	return c
}

func (p *parser) parseMerge() ast.Clause {
	m := &ast.MergeClause{Form: ast.MergeLegacy}
	if p.accept(token.ALL) {
		m.Form = ast.MergeAll
	} else if p.accept(token.SAME) {
		m.Form = ast.MergeSame
	}
	m.Pattern = p.parsePattern()
	for p.at(token.ON) {
		p.next()
		switch {
		case p.accept(token.CREATE):
			p.expect(token.SET)
			m.OnCreate = append(m.OnCreate, p.parseSetItems()...)
		case p.accept(token.MATCH):
			p.expect(token.SET)
			m.OnMatch = append(m.OnMatch, p.parseSetItems()...)
		default:
			p.errorf("expected CREATE or MATCH after ON")
		}
	}
	return m
}

func (p *parser) parseDelete(detach bool) ast.Clause {
	d := &ast.DeleteClause{Detach: detach}
	d.Exprs = append(d.Exprs, p.parseExpr())
	for p.accept(token.Comma) {
		d.Exprs = append(d.Exprs, p.parseExpr())
	}
	return d
}

func (p *parser) parseForeach() ast.Clause {
	p.expect(token.LParen)
	f := &ast.ForeachClause{Var: p.variable()}
	p.expect(token.IN)
	f.List = p.parseExpr()
	p.expect(token.Pipe)
	for !p.at(token.RParen) {
		c := p.parseClause()
		if c == nil {
			p.errorf("unterminated FOREACH body")
		}
		if !c.Updating() {
			p.errorf("FOREACH body allows update clauses only, found %T", c)
		}
		f.Body = append(f.Body, c)
	}
	p.expect(token.RParen)
	if len(f.Body) == 0 {
		p.errorf("FOREACH requires at least one update clause")
	}
	return f
}

func (p *parser) parseProjection() ast.Projection {
	proj := ast.Projection{}
	if p.accept(token.DISTINCT) {
		proj.Distinct = true
	}
	if p.accept(token.Star) {
		proj.Star = true
		for p.accept(token.Comma) {
			proj.Items = append(proj.Items, p.parseReturnItem())
		}
	} else {
		proj.Items = append(proj.Items, p.parseReturnItem())
		for p.accept(token.Comma) {
			proj.Items = append(proj.Items, p.parseReturnItem())
		}
	}
	if p.accept(token.ORDER) {
		p.expect(token.BY)
		for {
			item := &ast.SortItem{Expr: p.parseExpr()}
			if p.accept(token.DESC) {
				item.Desc = true
			} else {
				p.accept(token.ASC)
			}
			proj.OrderBy = append(proj.OrderBy, item)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if p.accept(token.SKIP) {
		proj.Skip = p.parseExpr()
	}
	if p.accept(token.LIMIT) {
		proj.Limit = p.parseExpr()
	}
	return proj
}

func (p *parser) parseReturnItem() *ast.ReturnItem {
	item := &ast.ReturnItem{Expr: p.parseExpr()}
	if p.accept(token.AS) {
		item.Alias = p.name()
	}
	return item
}

func (p *parser) parseSetItems() []ast.SetItem {
	var items []ast.SetItem
	for {
		items = append(items, p.parseSetItem())
		if !p.accept(token.Comma) {
			return items
		}
	}
}

func (p *parser) parseSetItem() ast.SetItem {
	// SET var:Label..., SET var = expr, SET var += expr,
	// SET <postfix-expr>.key = expr.
	if isVar(p.cur()) {
		switch p.peek().Type {
		case token.Colon:
			v := p.variable()
			return &ast.SetLabels{Var: v, Labels: p.parseLabelList()}
		case token.Eq:
			v := p.variable()
			p.next()
			return &ast.SetAllProps{Var: v, Value: p.parseExpr()}
		case token.PlusEq:
			v := p.variable()
			p.next()
			return &ast.SetAllProps{Var: v, Value: p.parseExpr(), Add: true}
		}
	}
	target := p.parsePostfix(p.parseAtom())
	pa, ok := target.(*ast.PropAccess)
	if !ok {
		p.errorf("invalid SET target %s", target)
	}
	p.expect(token.Eq)
	return &ast.SetProp{Target: pa.Expr, Key: pa.Key, Value: p.parseExpr()}
}

func (p *parser) parseLabelList() []string {
	var labels []string
	p.expect(token.Colon)
	labels = append(labels, p.name())
	for p.at(token.Colon) {
		p.next()
		labels = append(labels, p.name())
	}
	return labels
}

func (p *parser) parseRemove() ast.Clause {
	r := &ast.RemoveClause{}
	for {
		if isVar(p.cur()) && p.peek().Type == token.Colon {
			v := p.variable()
			r.Items = append(r.Items, &ast.RemoveLabels{Var: v, Labels: p.parseLabelList()})
		} else {
			target := p.parsePostfix(p.parseAtom())
			pa, ok := target.(*ast.PropAccess)
			if !ok {
				p.errorf("invalid REMOVE target %s", target)
			}
			r.Items = append(r.Items, &ast.RemoveProp{Target: pa.Expr, Key: pa.Key})
		}
		if !p.accept(token.Comma) {
			return r
		}
	}
}
