package parser

import (
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/token"
)

// Expression grammar, loosest to tightest:
//
//	or:          xor (OR xor)*
//	xor:         and (XOR and)*
//	and:         not (AND not)*
//	not:         NOT* comparison
//	comparison:  predicated ((= | <> | < | <= | > | >=) predicated)*
//	             (chains a < b < c fold into conjunction)
//	predicated:  addsub (STARTS WITH | ENDS WITH | CONTAINS | IN addsub
//	             | IS [NOT] NULL)*
//	addsub:      muldiv ((+ | -) muldiv)*
//	muldiv:      power ((* | / | %) power)*
//	power:       unary (^ unary)*
//	unary:       (+ | -)* postfix
//	postfix:     atom (. key | [expr] | [from..to])*
func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	e := p.parseXor()
	for p.accept(token.OR) {
		e = &ast.BinaryOp{Op: ast.OpOr, Left: e, Right: p.parseXor()}
	}
	return e
}

func (p *parser) parseXor() ast.Expr {
	e := p.parseAnd()
	for p.accept(token.XOR) {
		e = &ast.BinaryOp{Op: ast.OpXor, Left: e, Right: p.parseAnd()}
	}
	return e
}

func (p *parser) parseAnd() ast.Expr {
	e := p.parseNot()
	for p.accept(token.AND) {
		e = &ast.BinaryOp{Op: ast.OpAnd, Left: e, Right: p.parseNot()}
	}
	return e
}

func (p *parser) parseNot() ast.Expr {
	if p.accept(token.NOT) {
		return &ast.UnaryOp{Op: ast.OpNot, Expr: p.parseNot()}
	}
	return p.parseComparison()
}

var comparisonOps = map[token.Type]ast.BinaryOpKind{
	token.Eq:  ast.OpEq,
	token.Neq: ast.OpNeq,
	token.Lt:  ast.OpLt,
	token.Leq: ast.OpLeq,
	token.Gt:  ast.OpGt,
	token.Geq: ast.OpGeq,
}

func (p *parser) parseComparison() ast.Expr {
	first := p.parsePredicated()
	op, isCmp := comparisonOps[p.cur().Type]
	if !isCmp {
		return first
	}
	// Chained comparisons (a < b <= c) fold into a conjunction, matching
	// Cypher's mathematical reading.
	var result ast.Expr
	left := first
	for {
		op2, ok := comparisonOps[p.cur().Type]
		if !ok {
			break
		}
		p.next()
		right := p.parsePredicated()
		cmp := &ast.BinaryOp{Op: op2, Left: left, Right: right}
		if result == nil {
			result = cmp
		} else {
			result = &ast.BinaryOp{Op: ast.OpAnd, Left: result, Right: cmp}
		}
		left = right
	}
	_ = op
	return result
}

func (p *parser) parsePredicated() ast.Expr {
	e := p.parseAddSub()
	for {
		switch {
		case p.at(token.STARTS):
			p.next()
			p.expect(token.WITH)
			e = &ast.BinaryOp{Op: ast.OpStartsWith, Left: e, Right: p.parseAddSub()}
		case p.at(token.ENDS):
			p.next()
			p.expect(token.WITH)
			e = &ast.BinaryOp{Op: ast.OpEndsWith, Left: e, Right: p.parseAddSub()}
		case p.at(token.CONTAINS):
			p.next()
			e = &ast.BinaryOp{Op: ast.OpContains, Left: e, Right: p.parseAddSub()}
		case p.at(token.IN):
			p.next()
			e = &ast.BinaryOp{Op: ast.OpIn, Left: e, Right: p.parseAddSub()}
		case p.at(token.IS):
			p.next()
			not := p.accept(token.NOT)
			p.expect(token.NULL)
			e = &ast.IsNull{Expr: e, Not: not}
		default:
			return e
		}
	}
}

func (p *parser) parseAddSub() ast.Expr {
	e := p.parseMulDiv()
	for {
		switch {
		case p.accept(token.Plus):
			e = &ast.BinaryOp{Op: ast.OpAdd, Left: e, Right: p.parseMulDiv()}
		case p.accept(token.Minus):
			e = &ast.BinaryOp{Op: ast.OpSub, Left: e, Right: p.parseMulDiv()}
		default:
			return e
		}
	}
}

func (p *parser) parseMulDiv() ast.Expr {
	e := p.parsePower()
	for {
		switch {
		case p.accept(token.Star):
			e = &ast.BinaryOp{Op: ast.OpMul, Left: e, Right: p.parsePower()}
		case p.accept(token.Slash):
			e = &ast.BinaryOp{Op: ast.OpDiv, Left: e, Right: p.parsePower()}
		case p.accept(token.Percent):
			e = &ast.BinaryOp{Op: ast.OpMod, Left: e, Right: p.parsePower()}
		default:
			return e
		}
	}
}

func (p *parser) parsePower() ast.Expr {
	e := p.parseUnary()
	for p.accept(token.Caret) {
		e = &ast.BinaryOp{Op: ast.OpPow, Left: e, Right: p.parseUnary()}
	}
	return e
}

func (p *parser) parseUnary() ast.Expr {
	switch {
	case p.accept(token.Minus):
		return &ast.UnaryOp{Op: ast.OpNeg, Expr: p.parseUnary()}
	case p.accept(token.Plus):
		return &ast.UnaryOp{Op: ast.OpPos, Expr: p.parseUnary()}
	}
	return p.parsePostfix(p.parseAtom())
}

func (p *parser) parsePostfix(e ast.Expr) ast.Expr {
	for {
		switch {
		case p.at(token.Dot):
			p.next()
			e = &ast.PropAccess{Expr: e, Key: p.name()}
		case p.at(token.LBracket):
			p.next()
			var from ast.Expr
			if !p.at(token.DotDot) {
				from = p.parseExpr()
			}
			if p.accept(token.DotDot) {
				var to ast.Expr
				if !p.at(token.RBracket) {
					to = p.parseExpr()
				}
				p.expect(token.RBracket)
				e = &ast.Slice{Expr: e, From: from, To: to}
			} else {
				p.expect(token.RBracket)
				e = &ast.Index{Expr: e, Index: from}
			}
		default:
			return e
		}
	}
}

func (p *parser) parseAtom() ast.Expr {
	t := p.cur()
	switch t.Type {
	case token.Int:
		p.next()
		n, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			p.errorf("invalid integer literal %q", t.Lit)
		}
		return &ast.Literal{Value: n}
	case token.Float:
		p.next()
		f, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf("invalid float literal %q", t.Lit)
		}
		return &ast.Literal{Value: f}
	case token.String:
		p.next()
		return &ast.Literal{Value: t.Lit}
	case token.TRUE:
		p.next()
		return &ast.Literal{Value: true}
	case token.FALSE:
		p.next()
		return &ast.Literal{Value: false}
	case token.NULL:
		p.next()
		return &ast.Literal{Value: nil}
	case token.Param:
		p.next()
		return &ast.Parameter{Name: t.Lit}
	case token.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e
	case token.LBracket:
		return p.parseListAtom()
	case token.LBrace:
		return p.parseMapLiteral()
	case token.CASE:
		return p.parseCase()
	case token.ALL:
		// Quantifier all(...); ALL is a reserved word so it cannot be a
		// plain function name.
		if p.peek().Type == token.LParen {
			p.next()
			p.expect(token.LParen)
			return p.parseQuantifier(ast.QuantAll)
		}
		p.errorf("unexpected ALL")
	case token.Ident:
		if p.peek().Type == token.LParen {
			return p.parseCallLike()
		}
		p.next()
		return &ast.Variable{Name: t.Lit}
	default:
		if softKeywords[t.Type] {
			if p.peek().Type == token.LParen {
				return p.parseCallLike()
			}
			p.next()
			return &ast.Variable{Name: t.Lit}
		}
	}
	p.errorf("unexpected %s in expression", describe(t))
	return nil
}

// parseListAtom disambiguates list literals from list comprehensions.
func (p *parser) parseListAtom() ast.Expr {
	p.expect(token.LBracket)
	// Comprehension: [ x IN ... ]
	if p.at(token.Ident) && p.peek().Type == token.IN {
		v := p.variable()
		p.expect(token.IN)
		lc := &ast.ListComprehension{Var: v, List: p.parseExpr()}
		if p.accept(token.WHERE) {
			lc.Where = p.parseExpr()
		}
		if p.accept(token.Pipe) {
			lc.Proj = p.parseExpr()
		}
		p.expect(token.RBracket)
		return lc
	}
	lst := &ast.ListLit{}
	if !p.at(token.RBracket) {
		for {
			lst.Elems = append(lst.Elems, p.parseExpr())
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RBracket)
	return lst
}

func (p *parser) parseCase() ast.Expr {
	p.expect(token.CASE)
	c := &ast.CaseExpr{}
	if !p.at(token.WHEN) {
		c.Test = p.parseExpr()
	}
	for p.accept(token.WHEN) {
		c.Whens = append(c.Whens, p.parseExpr())
		p.expect(token.THEN)
		c.Thens = append(c.Thens, p.parseExpr())
	}
	if len(c.Whens) == 0 {
		p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(token.ELSE) {
		c.Else = p.parseExpr()
	}
	p.expect(token.END)
	return c
}

// parseCallLike parses function calls and the function-like binders
// (any/none/single quantifiers, reduce).
func (p *parser) parseCallLike() ast.Expr {
	name := p.next().Lit
	lower := strings.ToLower(name)
	p.expect(token.LParen)
	switch lower {
	case "any":
		return p.parseQuantifier(ast.QuantAny)
	case "none":
		return p.parseQuantifier(ast.QuantNone)
	case "single":
		return p.parseQuantifier(ast.QuantSingle)
	case "reduce":
		return p.parseReduce()
	}
	f := &ast.FuncCall{Name: lower}
	if p.accept(token.DISTINCT) {
		f.Distinct = true
	}
	if p.at(token.Star) && lower == "count" {
		p.next()
		f.Star = true
		p.expect(token.RParen)
		return f
	}
	if !p.at(token.RParen) {
		for {
			f.Args = append(f.Args, p.parseExpr())
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	return f
}

// parseQuantifier parses the body after "kind(" has been consumed.
func (p *parser) parseQuantifier(kind ast.QuantKind) ast.Expr {
	q := &ast.Quantifier{Kind: kind, Var: p.variable()}
	p.expect(token.IN)
	q.List = p.parseExpr()
	p.expect(token.WHERE)
	q.Where = p.parseExpr()
	p.expect(token.RParen)
	return q
}

// parseReduce parses the body after "reduce(" has been consumed.
func (p *parser) parseReduce() ast.Expr {
	r := &ast.Reduce{Acc: p.variable()}
	p.expect(token.Eq)
	r.Init = p.parseExpr()
	p.expect(token.Comma)
	r.Var = p.variable()
	p.expect(token.IN)
	r.List = p.parseExpr()
	p.expect(token.Pipe)
	r.Expr = p.parseExpr()
	p.expect(token.RParen)
	return r
}
