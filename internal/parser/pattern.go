package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/token"
)

// parsePattern parses a comma-separated tuple of pattern parts
// (the <dir. upd. pat.> tuples of Figures 5 and 10, and MATCH patterns).
func (p *parser) parsePattern() []*ast.PatternPart {
	var parts []*ast.PatternPart
	parts = append(parts, p.parsePatternPart())
	for p.accept(token.Comma) {
		parts = append(parts, p.parsePatternPart())
	}
	return parts
}

// parsePatternPart parses [name =] node (rel node)*.
func (p *parser) parsePatternPart() *ast.PatternPart {
	part := &ast.PatternPart{}
	if isVar(p.cur()) && p.peek().Type == token.Eq {
		part.Var = p.variable()
		p.next() // =
	}
	part.Nodes = append(part.Nodes, p.parseNodePattern())
	for p.at(token.Minus) || p.at(token.Lt) {
		rel := p.parseRelPattern()
		part.Rels = append(part.Rels, rel)
		part.Nodes = append(part.Nodes, p.parseNodePattern())
	}
	return part
}

// parseNodePattern parses ( var? labels? props? ).
func (p *parser) parseNodePattern() *ast.NodePattern {
	p.expect(token.LParen)
	n := &ast.NodePattern{}
	if isVar(p.cur()) {
		n.Var = p.variable()
	}
	if p.at(token.Colon) {
		n.Labels = p.parseLabelList()
	}
	if p.at(token.LBrace) {
		n.Props = p.parseMapLiteral()
	} else if p.at(token.Param) {
		n.Props = &ast.Parameter{Name: p.next().Lit}
	}
	p.expect(token.RParen)
	return n
}

// parseRelPattern parses the relationship connector between two node
// patterns:
//
//	-->   --   <--             (bracketless shorthands)
//	-[ body ]->  <-[ body ]-  -[ body ]-  <-[ body ]->
//
// where body is: var? (:TYPE (| :?TYPE)*)? varlength? props?.
func (p *parser) parseRelPattern() *ast.RelPattern {
	r := &ast.RelPattern{Direction: ast.DirBoth, MinHops: -1, MaxHops: -1}
	leftArrow := false
	if p.accept(token.Lt) {
		leftArrow = true
	}
	p.expect(token.Minus)
	if p.accept(token.LBracket) {
		p.parseRelBody(r)
		p.expect(token.RBracket)
	}
	p.expect(token.Minus)
	rightArrow := p.accept(token.Gt)
	switch {
	case leftArrow && rightArrow:
		r.Direction = ast.DirBoth
	case leftArrow:
		r.Direction = ast.DirIn
	case rightArrow:
		r.Direction = ast.DirOut
	default:
		r.Direction = ast.DirBoth
	}
	return r
}

func (p *parser) parseRelBody(r *ast.RelPattern) {
	if isVar(p.cur()) {
		r.Var = p.variable()
	}
	if p.accept(token.Colon) {
		r.Types = append(r.Types, p.name())
		for p.accept(token.Pipe) {
			p.accept(token.Colon) // both :A|:B and :A|B are accepted
			r.Types = append(r.Types, p.name())
		}
	}
	if p.accept(token.Star) {
		r.VarLength = true
		if p.at(token.Int) {
			n := p.parseIntLit()
			r.MinHops = n
			r.MaxHops = n
		}
		if p.accept(token.DotDot) {
			r.MaxHops = -1
			if p.at(token.Int) {
				r.MaxHops = p.parseIntLit()
			}
		}
	}
	if p.at(token.LBrace) {
		r.Props = p.parseMapLiteral()
	} else if p.at(token.Param) {
		r.Props = &ast.Parameter{Name: p.next().Lit}
	}
}

func (p *parser) parseIntLit() int {
	t := p.expect(token.Int)
	n, err := strconv.ParseInt(t.Lit, 0, 64)
	if err != nil {
		p.errorf("invalid integer %q", t.Lit)
	}
	return int(n)
}

// parseMapLiteral parses { key: expr, ... }.
func (p *parser) parseMapLiteral() *ast.MapLit {
	p.expect(token.LBrace)
	m := &ast.MapLit{}
	if !p.at(token.RBrace) {
		for {
			key := p.mapKey()
			p.expect(token.Colon)
			m.Keys = append(m.Keys, key)
			m.Vals = append(m.Vals, p.parseExpr())
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RBrace)
	return m
}

func (p *parser) mapKey() string {
	if p.at(token.String) {
		return p.next().Lit
	}
	return p.name()
}
