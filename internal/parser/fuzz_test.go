package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// fragments is a pool of Cypher-ish tokens used to build random inputs.
var fragments = []string{
	"MATCH", "OPTIONAL", "CREATE", "MERGE", "ALL", "SAME", "SET", "REMOVE",
	"DELETE", "DETACH", "RETURN", "WITH", "WHERE", "UNWIND", "AS", "FOREACH",
	"UNION", "ORDER", "BY", "SKIP", "LIMIT", "LOAD", "CSV", "FROM", "HEADERS",
	"(", ")", "[", "]", "{", "}", "-", "->", "<-", ":", ",", ".", "..", "|",
	"=", "<>", "<", "<=", ">", ">=", "+", "+=", "*", "/", "%", "^",
	"n", "m", "rel", "Label", "TYPE", "prop", "name",
	"1", "2.5", "'str'", "\"dq\"", "$param", "true", "false", "null",
	"count", "sum", "collect", "all", "any", "reduce", "exists",
	"AND", "OR", "XOR", "NOT", "IN", "IS", "CASE", "WHEN", "THEN", "ELSE", "END",
}

// Parse must never panic: every input either parses or yields a *Error
// (or a lexer error). This guards the panic/recover discipline inside
// the recursive-descent parser.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 5000; i++ {
		n := 1 + rng.Intn(25)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// Random byte strings must not panic the lexer or parser either.
func TestParseRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(128))
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// Valid statements drawn from a template pool must parse, and their
// printed form must re-parse to the same printed form (printer fixpoint).
func TestPrintParseFixpointOnTemplates(t *testing.T) {
	templates := []string{
		`MATCH (a:%s)-[:%s]->(b) WHERE a.%s = %d RETURN b.%s AS out ORDER BY out SKIP %d LIMIT %d`,
		`CREATE (:%s {k: %d})-[:%s {w: %d}]->(:%s)`,
		`MERGE ALL (:%s {id: %d})-[:%s]->(:%s {id: %d})`,
		`MERGE SAME (a:%s {id: %d})-[:%s]->(b:%s {id: %d})`,
		`UNWIND range(%d, %d) AS x WITH x WHERE x %% 2 = 0 RETURN collect(x) AS xs`,
		`MATCH (n:%s) SET n.%s = %d, n:%s REMOVE n.%s`,
		`FOREACH (i IN range(1, %d) | CREATE (:%s {i: i}))`,
		`MATCH (n:%s) DETACH DELETE n`,
	}
	rng := rand.New(rand.NewSource(99))
	names := []string{"A", "B", "Prod", "User", "T", "KNOWS", "k", "v", "w"}
	pick := func() any { return names[rng.Intn(len(names))] }
	num := func() any { return rng.Intn(100) }
	for i := 0; i < 500; i++ {
		tpl := templates[rng.Intn(len(templates))]
		var args []any
		for j := 0; j < strings.Count(tpl, "%")-strings.Count(tpl, "%%"); j++ {
			if strings.Contains(tpl, "%d") && j%2 == 1 {
				args = append(args, num())
			} else {
				args = append(args, pick())
			}
		}
		src := sprintfTemplate(tpl, args)
		stmt, err := Parse(src)
		if err != nil {
			// Some random fills are type-invalid (e.g. %d receiving a
			// string); skip those.
			continue
		}
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form of %q does not re-parse: %q: %v", src, printed, err)
		}
		if stmt2.String() != printed {
			t.Fatalf("printer not a fixpoint:\n1: %q\n2: %q", printed, stmt2.String())
		}
	}
}

// sprintfTemplate is a tolerant fmt.Sprintf: mismatched verbs produce a
// skippable result instead of panicking the generator.
func sprintfTemplate(tpl string, args []any) string {
	defer func() { recover() }()
	out := tpl
	for _, a := range args {
		switch v := a.(type) {
		case string:
			out = strings.Replace(out, "%s", v, 1)
			out = strings.Replace(out, "%d", "1", 1)
		case int:
			if strings.Contains(out, "%d") {
				out = strings.Replace(out, "%d", itoa(v), 1)
			} else {
				out = strings.Replace(out, "%s", "X", 1)
			}
		}
	}
	out = strings.ReplaceAll(out, "%%", "%")
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
