package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func mustParse(t *testing.T, src string) *ast.Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func firstClause(t *testing.T, src string) ast.Clause {
	t.Helper()
	return mustParse(t, src).Queries[0].Clauses[0]
}

// The queries of the paper, Sections 2-4, must all parse.
func TestPaperQueriesParse(t *testing.T) {
	queries := []string{
		// Query (1)
		`MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product)
		 WHERE p.name = "laptop"
		 RETURN v`,
		// Query (2)
		`MATCH (u:User{id:89})
		 CREATE (u)-[:ORDERED]->(:New_Product{id:0})`,
		// Query (3)
		`MATCH (p:New_Product{id:0})
		 SET p:Product, p.id=120, p.name="smartphone"
		 REMOVE p:New_Product`,
		// DELETE examples
		`MATCH (p:Product{id:120}) DELETE p`,
		`MATCH ()-[r]->(p:Product{id:120}) DELETE r,p`,
		// Query (4)
		`MATCH (p:Product{id:120}) DETACH DELETE p`,
		// Intertwined example from Section 3
		`MATCH (u:User{id:89})
		 CREATE (u)-[:ORDERED]->(p:New_Product{id:0})
		 SET p:Product,p.id=120,p.name="phone"
		 REMOVE p:New_Product
		 DETACH DELETE p`,
		// Query (5)
		`MATCH (p:Product)
		 MERGE (p)<-[:OFFERS]-(v:Vendor)
		 RETURN p,v`,
		// Example 1
		`MATCH (p1:Product{name:"laptop"}), (p2:Product{name:"tablet"})
		 SET p1.id = p2.id, p2.id = p1.id`,
		// Example 2
		`MATCH (p1:Product{id:85}),(p2:Product{id:125})
		 SET p1.name = p2.name`,
		// Section 4.2 DELETE example
		`MATCH (user)-[order:ORDERED]->(product)
		 DELETE user
		 SET user.id = 999
		 DELETE order
		 RETURN user`,
		// Example 3 / Query (6)
		`MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)`,
		// MATCH (v)-[*]->(v) from Section 2
		`MATCH (v)-[*]->(v) RETURN v`,
		// Examples 5-7 (the MERGE ALL / MERGE SAME forms of Section 7)
		`MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`,
		`MERGE SAME (:User{id:cid})-[:ORDERED]->(:Product{id:pid})`,
		`MERGE (:User{id:bid})-[:ORDERED]->(:Product{id:pid})<-[:OFFERS]-(:User{id:sid})`,
		`MERGE (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)`,
	}
	for _, q := range queries {
		mustParse(t, q)
	}
}

func TestMatchClause(t *testing.T) {
	c := firstClause(t, `MATCH (p:Product)<-[:OFFERS]-(v:Vendor) WHERE p.name = 'x' RETURN v`)
	m, ok := c.(*ast.MatchClause)
	if !ok {
		t.Fatalf("got %T", c)
	}
	if m.Optional {
		t.Error("should not be optional")
	}
	if m.Where == nil {
		t.Error("missing WHERE")
	}
	part := m.Pattern[0]
	if len(part.Nodes) != 2 || len(part.Rels) != 1 {
		t.Fatalf("pattern shape: %d nodes %d rels", len(part.Nodes), len(part.Rels))
	}
	if part.Nodes[0].Var != "p" || part.Nodes[0].Labels[0] != "Product" {
		t.Error("first node pattern wrong")
	}
	if part.Rels[0].Direction != ast.DirIn || part.Rels[0].Types[0] != "OFFERS" {
		t.Errorf("rel pattern wrong: %+v", part.Rels[0])
	}
}

func TestOptionalMatch(t *testing.T) {
	c := firstClause(t, `OPTIONAL MATCH (n) RETURN n`)
	m := c.(*ast.MatchClause)
	if !m.Optional {
		t.Error("OPTIONAL lost")
	}
}

func TestNamedPathAndVarLength(t *testing.T) {
	c := firstClause(t, `MATCH pth = (a)-[r:KNOWS*2..4]->(b) RETURN pth`)
	m := c.(*ast.MatchClause)
	if m.Pattern[0].Var != "pth" {
		t.Error("path variable lost")
	}
	r := m.Pattern[0].Rels[0]
	if !r.VarLength || r.MinHops != 2 || r.MaxHops != 4 {
		t.Errorf("varlength parse: %+v", r)
	}
	// Unbounded forms.
	r2 := firstClause(t, `MATCH (a)-[*]->(b) RETURN a`).(*ast.MatchClause).Pattern[0].Rels[0]
	if !r2.VarLength || r2.MinHops != -1 || r2.MaxHops != -1 {
		t.Errorf("bare star: %+v", r2)
	}
	r3 := firstClause(t, `MATCH (a)-[*3]->(b) RETURN a`).(*ast.MatchClause).Pattern[0].Rels[0]
	if r3.MinHops != 3 || r3.MaxHops != 3 {
		t.Errorf("fixed hops: %+v", r3)
	}
	r4 := firstClause(t, `MATCH (a)-[*..5]->(b) RETURN a`).(*ast.MatchClause).Pattern[0].Rels[0]
	if r4.MinHops != -1 || r4.MaxHops != 5 {
		t.Errorf("upper bound only: %+v", r4)
	}
	r5 := firstClause(t, `MATCH (a)-[*2..]->(b) RETURN a`).(*ast.MatchClause).Pattern[0].Rels[0]
	if r5.MinHops != 2 || r5.MaxHops != -1 {
		t.Errorf("lower bound only: %+v", r5)
	}
}

func TestRelTypeAlternatives(t *testing.T) {
	r := firstClause(t, `MATCH (a)-[:A|B|:C]->(b) RETURN a`).(*ast.MatchClause).Pattern[0].Rels[0]
	if len(r.Types) != 3 || r.Types[0] != "A" || r.Types[1] != "B" || r.Types[2] != "C" {
		t.Errorf("types = %v", r.Types)
	}
}

func TestMergeForms(t *testing.T) {
	m := firstClause(t, `MERGE (a)-[:T]->(b)`).(*ast.MergeClause)
	if m.Form != ast.MergeLegacy {
		t.Error("legacy form")
	}
	m = firstClause(t, `MERGE ALL (a)-[:T]->(b), (c)-[:U]->(d)`).(*ast.MergeClause)
	if m.Form != ast.MergeAll || len(m.Pattern) != 2 {
		t.Errorf("MERGE ALL: form=%v parts=%d", m.Form, len(m.Pattern))
	}
	m = firstClause(t, `MERGE SAME (a)-[:T]->(b)`).(*ast.MergeClause)
	if m.Form != ast.MergeSame {
		t.Error("MERGE SAME")
	}
}

func TestMergeOnCreateOnMatch(t *testing.T) {
	m := firstClause(t, `MERGE (n:N{id:1}) ON CREATE SET n.created = true ON MATCH SET n.seen = n.seen + 1`).(*ast.MergeClause)
	if len(m.OnCreate) != 1 || len(m.OnMatch) != 1 {
		t.Fatalf("ON CREATE %d, ON MATCH %d", len(m.OnCreate), len(m.OnMatch))
	}
}

func TestSetItems(t *testing.T) {
	s := firstClause(t, `SET p:Product:Sale, p.id = 120, m = {a: 1}, m += {b: 2}`).(*ast.SetClause)
	if len(s.Items) != 4 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if sl, ok := s.Items[0].(*ast.SetLabels); !ok || len(sl.Labels) != 2 {
		t.Errorf("item0 = %#v", s.Items[0])
	}
	if sp, ok := s.Items[1].(*ast.SetProp); !ok || sp.Key != "id" {
		t.Errorf("item1 = %#v", s.Items[1])
	}
	if sa, ok := s.Items[2].(*ast.SetAllProps); !ok || sa.Add {
		t.Errorf("item2 = %#v", s.Items[2])
	}
	if sa, ok := s.Items[3].(*ast.SetAllProps); !ok || !sa.Add {
		t.Errorf("item3 = %#v", s.Items[3])
	}
}

func TestRemoveItems(t *testing.T) {
	r := firstClause(t, `REMOVE p:New_Product, p.name`).(*ast.RemoveClause)
	if len(r.Items) != 2 {
		t.Fatalf("items = %d", len(r.Items))
	}
	if _, ok := r.Items[0].(*ast.RemoveLabels); !ok {
		t.Errorf("item0 = %#v", r.Items[0])
	}
	if rp, ok := r.Items[1].(*ast.RemoveProp); !ok || rp.Key != "name" {
		t.Errorf("item1 = %#v", r.Items[1])
	}
}

func TestForeach(t *testing.T) {
	f := firstClause(t, `FOREACH (x IN [1,2,3] | CREATE (:N{v:x}) SET n.k = 1)`).(*ast.ForeachClause)
	if f.Var != "x" || len(f.Body) != 2 {
		t.Fatalf("foreach = %+v", f)
	}
	// Reading clauses in body are rejected.
	if _, err := Parse(`FOREACH (x IN [1] | MATCH (n) RETURN n)`); err == nil {
		t.Error("reading clause in FOREACH should fail")
	}
	if _, err := Parse(`FOREACH (x IN [1] | )`); err == nil {
		t.Error("empty FOREACH should fail")
	}
}

func TestUnion(t *testing.T) {
	s := mustParse(t, `MATCH (a) RETURN a UNION MATCH (b) RETURN b UNION ALL MATCH (c) RETURN c`)
	if len(s.Queries) != 3 {
		t.Fatalf("queries = %d", len(s.Queries))
	}
	if s.UnionAll[0] || !s.UnionAll[1] {
		t.Errorf("union flags = %v", s.UnionAll)
	}
}

func TestWithProjection(t *testing.T) {
	c := mustParse(t, `MATCH (n) WITH DISTINCT n.a AS a, count(*) AS c ORDER BY c DESC, a SKIP 1 LIMIT 2 WHERE c > 1 RETURN a`)
	w := c.Queries[0].Clauses[1].(*ast.WithClause)
	if !w.Distinct || len(w.Items) != 2 {
		t.Error("projection flags")
	}
	if len(w.OrderBy) != 2 || !w.OrderBy[0].Desc || w.OrderBy[1].Desc {
		t.Error("order by")
	}
	if w.Skip == nil || w.Limit == nil || w.Where == nil {
		t.Error("skip/limit/where")
	}
}

func TestReturnStar(t *testing.T) {
	c := firstClause(t, `RETURN *`)
	r := c.(*ast.ReturnClause)
	if !r.Star {
		t.Error("star lost")
	}
	c2 := mustParse(t, `MATCH (n) RETURN *, n.x AS x`).Queries[0].Clauses[1].(*ast.ReturnClause)
	if !c2.Star || len(c2.Items) != 1 {
		t.Error("star with items")
	}
}

func TestUnwind(t *testing.T) {
	u := firstClause(t, `UNWIND [1,2] AS x RETURN x`).(*ast.UnwindClause)
	if u.Var != "x" {
		t.Error("unwind var")
	}
}

func TestLoadCSV(t *testing.T) {
	c := firstClause(t, `LOAD CSV WITH HEADERS FROM 'file:///orders.csv' AS row FIELDTERMINATOR ';' RETURN row`)
	l := c.(*ast.LoadCSVClause)
	if !l.WithHeaders || l.Var != "row" || l.FieldTerm != ";" {
		t.Errorf("load csv = %+v", l)
	}
	c2 := firstClause(t, `LOAD CSV FROM 'x.csv' AS line RETURN line`).(*ast.LoadCSVClause)
	if c2.WithHeaders {
		t.Error("headers flag wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"MATCH",
		"MATCH (n",
		"MATCH (n) RETURN",
		"FROB (n)",
		"MATCH (n) RETURN n extra",
		"SET 1 = 2",
		"SET n.x",
		"REMOVE 1+1",
		"MERGE",
		"MERGE (n) ON DELETE SET n.x = 1",
		"CASE WHEN true END",             // missing THEN
		"RETURN CASE END",                // no WHEN
		"UNWIND [1] AS",                  // missing var
		"MATCH (a)-[:]->(b) RETURN a",    // empty type
		"RETURN all(x IN [1])",           // quantifier needs WHERE
		"RETURN reduce(a, x IN [1] | x)", // reduce needs init
		"MATCH (n) WHERE RETURN n",       // missing predicate
		"LOAD CSV 'f' AS x RETURN x",     // missing FROM
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestErrorsHavePositions(t *testing.T) {
	_, err := Parse("MATCH (n) RETRN n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "parse error at 1:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	// The printer must emit re-parseable Cypher for a representative corpus.
	queries := []string{
		`MATCH (p:Product)<-[:OFFERS]-(v:Vendor) WHERE p.name = 'laptop' RETURN v`,
		`MATCH (u:User {id: 89}) CREATE (u)-[:ORDERED]->(:New_Product {id: 0})`,
		`MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})`,
		`MERGE SAME (a)-[:TO]->(b)`,
		`MATCH (a)-[r:KNOWS*2..4]->(b) RETURN a, r, b`,
		`UNWIND [1, 2] AS x WITH x AS y RETURN y ORDER BY y DESC SKIP 1 LIMIT 1`,
		`FOREACH (x IN [1] | CREATE (:N {v: x}))`,
		`MATCH (n) DETACH DELETE n`,
		`MATCH (a) RETURN a UNION ALL MATCH (b) RETURN b`,
		`RETURN CASE WHEN 1 < 2 THEN 'a' ELSE 'b' END AS r`,
		`RETURN [x IN [1, 2] WHERE x > 1 | x * 2] AS l`,
		`RETURN reduce(acc = 0, x IN [1, 2] | acc + x) AS s`,
		`RETURN all(x IN [1] WHERE x > 0) AS q`,
		`MATCH (n) SET n += {a: 1} REMOVE n:Old RETURN n`,
	}
	for _, q := range queries {
		s1 := mustParse(t, q)
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q failed: %v\n(original %q)", printed, err, q)
			continue
		}
		if s2.String() != printed {
			t.Errorf("print not stable:\n1st %q\n2nd %q", printed, s2.String())
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":           "(1 + (2 * 3))",
		"(1 + 2) * 3":         "((1 + 2) * 3)",
		"1 < 2 AND 2 < 3":     "((1 < 2) AND (2 < 3))",
		"NOT a OR b":          "(NOT (a) OR b)",
		"a XOR b AND c":       "(a XOR (b AND c))",
		"-1 + 2":              "(-(1) + 2)",
		"2 ^ 3 ^ 2":           "((2 ^ 3) ^ 2)",
		"a.b.c":               "a.b.c",
		"x IN [1] AND y":      "((x IN [1]) AND y)",
		"a + b STARTS WITH c": "((a + b) STARTS WITH c)",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		if got := e.String(); got != want {
			t.Errorf("ParseExpr(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestChainedComparison(t *testing.T) {
	e, err := ParseExpr("1 < 2 < 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "((1 < 2) AND (2 < 3))" {
		t.Errorf("chained comparison = %q", got)
	}
}

func TestCountStar(t *testing.T) {
	e, err := ParseExpr("count(*)")
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*ast.FuncCall)
	if !f.Star || f.Name != "count" {
		t.Errorf("count(*) = %+v", f)
	}
	e2, _ := ParseExpr("count(DISTINCT x)")
	if !e2.(*ast.FuncCall).Distinct {
		t.Error("DISTINCT lost")
	}
}

func TestSliceAndIndex(t *testing.T) {
	e, err := ParseExpr("xs[1..3]")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.Slice); !ok {
		t.Errorf("slice = %T", e)
	}
	e2, _ := ParseExpr("xs[0]")
	if _, ok := e2.(*ast.Index); !ok {
		t.Errorf("index = %T", e2)
	}
	e3, _ := ParseExpr("xs[..2]")
	if s, ok := e3.(*ast.Slice); !ok || s.From != nil || s.To == nil {
		t.Errorf("open slice = %#v", e3)
	}
}

func TestKeywordsAsNames(t *testing.T) {
	// Keywords can be labels, types, property keys and map keys.
	mustParse(t, "MATCH (n:Match) RETURN n.end")
	mustParse(t, "MATCH (a)-[:IN]->(b) RETURN a")
	mustParse(t, "RETURN {set: 1, `match`: 2, 'with space': 3} AS m")
}

func TestVariablesHelper(t *testing.T) {
	e, err := ParseExpr("a.x + b + [c IN lst WHERE c > d | c]")
	if err != nil {
		t.Fatal(err)
	}
	vars := ast.Variables(e)
	want := []string{"a", "b", "lst", "d"}
	if len(vars) != len(want) {
		t.Fatalf("Variables = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Variables = %v, want %v", vars, want)
		}
	}
}

func TestContainsAggregate(t *testing.T) {
	e, _ := ParseExpr("1 + count(x)")
	if !ast.ContainsAggregate(e) {
		t.Error("count not detected")
	}
	e2, _ := ParseExpr("size(xs) + 1")
	if ast.ContainsAggregate(e2) {
		t.Error("size is not an aggregate")
	}
}

func TestParseTxnControl(t *testing.T) {
	cases := map[string]ast.TxnControl{
		"BEGIN":     ast.TxnBegin,
		"begin;":    ast.TxnBegin,
		"COMMIT":    ast.TxnCommit,
		"Commit ;":  ast.TxnCommit,
		"ROLLBACK":  ast.TxnRollback,
		"rollback;": ast.TxnRollback,
	}
	for src, want := range cases {
		stmt := mustParse(t, src)
		if stmt.TxnControl != want {
			t.Errorf("Parse(%q).TxnControl = %v, want %v", src, stmt.TxnControl, want)
		}
		if len(stmt.Queries) != 0 {
			t.Errorf("Parse(%q) carried %d queries", src, len(stmt.Queries))
		}
	}
	// The keywords stay soft: usable as variables and property keys.
	stmt := mustParse(t, "WITH 1 AS begin RETURN begin AS commit")
	if stmt.TxnControl != ast.TxnNone {
		t.Error("query misread as transaction control")
	}
	// BEGIN followed by clauses is a parse error, not a silent query.
	if _, err := Parse("BEGIN MATCH (n) RETURN n"); err == nil {
		t.Error("BEGIN with trailing clauses should not parse")
	}
}
