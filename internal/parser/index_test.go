package parser

import (
	"testing"

	"repro/internal/ast"
)

func TestParseIndexStatements(t *testing.T) {
	cases := []struct {
		src  string
		want ast.IndexStmt
	}{
		{`CREATE INDEX ON :User(id)`, ast.IndexStmt{Label: "User", Prop: "id"}},
		{`create index on :User(id);`, ast.IndexStmt{Label: "User", Prop: "id"}},
		{`DROP INDEX ON :User(id)`, ast.IndexStmt{Drop: true, Label: "User", Prop: "id"}},
		{`drop index on :Post(score)`, ast.IndexStmt{Drop: true, Label: "Post", Prop: "score"}},
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if stmt.Index == nil || *stmt.Index != c.want {
			t.Fatalf("%s: parsed %+v, want %+v", c.src, stmt.Index, c.want)
		}
		if !stmt.Updating() {
			t.Errorf("%s: index statements must report Updating", c.src)
		}
		// Statement printing round-trips.
		again, err := Parse(stmt.String())
		if err != nil || *again.Index != c.want {
			t.Errorf("%s: round trip via %q failed: %+v, %v", c.src, stmt.String(), again, err)
		}
	}
}

// TestIndexKeywordsStaySoft: `index` and `drop` remain usable as
// variable names; only the statement-initial CREATE INDEX ON / DROP
// INDEX forms are recognized as schema statements.
func TestIndexKeywordsStaySoft(t *testing.T) {
	for _, src := range []string{
		`RETURN index`,
		`MATCH (index:User) RETURN index.id AS id`,
		`MATCH (drop) RETURN drop`,
		`CREATE index = (:A)-[:T]->(:B) RETURN index`,
		`WITH 1 AS index RETURN index + 1 AS x`,
		`MATCH (n) SET n.index = 1`,
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if stmt.Index != nil {
			t.Errorf("%s: misparsed as a schema statement", src)
		}
	}
}

func TestParseIndexErrors(t *testing.T) {
	for _, src := range []string{
		`DROP`,
		`DROP INDEX`,
		`DROP INDEX ON User(id)`,
		`CREATE INDEX ON :User`,
		`CREATE INDEX ON :User()`,
		`CREATE INDEX ON :User(id) RETURN 1`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", src)
		}
	}
}
