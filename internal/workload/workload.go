// Package workload generates synthetic graphs and driving tables that
// scale the paper's example workloads up for benchmarking:
//
//   - marketplace graphs shaped like Figure 1 (vendors offering
//     products, users ordering them);
//   - order-import tables shaped like Example 5 (cid/pid pairs with
//     configurable duplicate and null rates) — the CSV/relational import
//     scenario that Sections 5-6 identify as the dominant MERGE use case;
//   - clickstream path tables shaped like Example 7;
//   - merge-path tables shaped like Example 3.
//
// All generators are deterministic for a given seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/value"
)

// Marketplace describes a Figure 1-shaped graph at scale.
type Marketplace struct {
	Vendors  int
	Products int
	Users    int
	// OffersPerVendor and OrdersPerUser control relationship fan-out.
	OffersPerVendor int
	OrdersPerUser   int
	Seed            int64
}

// DefaultMarketplace returns a medium-sized configuration.
func DefaultMarketplace() Marketplace {
	return Marketplace{
		Vendors:         20,
		Products:        500,
		Users:           200,
		OffersPerVendor: 50,
		OrdersPerUser:   5,
		Seed:            1,
	}
}

// Build materializes the marketplace into a fresh graph.
func (m Marketplace) Build() *graph.Graph {
	rng := rand.New(rand.NewSource(m.Seed))
	g := graph.New()
	products := make([]graph.NodeID, m.Products)
	for i := range products {
		products[i] = g.CreateNode([]string{"Product"}, value.Map{
			"id":   value.Int(int64(i)),
			"name": value.String(fmt.Sprintf("product-%d", i)),
		}).ID
	}
	for v := 0; v < m.Vendors; v++ {
		vid := g.CreateNode([]string{"Vendor"}, value.Map{
			"id":   value.Int(int64(v)),
			"name": value.String(fmt.Sprintf("vendor-%d", v)),
		}).ID
		for k := 0; k < m.OffersPerVendor && len(products) > 0; k++ {
			p := products[rng.Intn(len(products))]
			if _, err := g.CreateRel(vid, p, "OFFERS", nil); err != nil {
				panic(err)
			}
		}
	}
	for u := 0; u < m.Users; u++ {
		uid := g.CreateNode([]string{"User"}, value.Map{
			"id":   value.Int(int64(u)),
			"name": value.String(fmt.Sprintf("user-%d", u)),
		}).ID
		for k := 0; k < m.OrdersPerUser && len(products) > 0; k++ {
			p := products[rng.Intn(len(products))]
			if _, err := g.CreateRel(uid, p, "ORDERED", nil); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// OrderImport describes an Example 5-shaped driving table.
type OrderImport struct {
	Rows int
	// Customers and Products bound the id domains; smaller domains mean
	// more duplicates (the paper's dirty-data scenario).
	Customers int
	Products  int
	// NullRate is the probability that a row's pid is null (an order of
	// an unknown product), as in Example 5's table.
	NullRate float64
	Seed     int64
}

// DefaultOrderImport returns a configuration mirroring Example 5's
// shape at 1000 rows.
func DefaultOrderImport(rows int) OrderImport {
	return OrderImport{
		Rows:      rows,
		Customers: rows / 4,
		Products:  rows / 8,
		NullRate:  0.2,
		Seed:      1,
	}
}

// Build materializes the driving table with columns cid, pid, date.
func (o OrderImport) Build() *table.Table {
	rng := rand.New(rand.NewSource(o.Seed))
	t := table.New("cid", "pid", "date")
	for i := 0; i < o.Rows; i++ {
		cid := value.Value(value.Int(int64(rng.Intn(max(o.Customers, 1)))))
		var pid value.Value = value.NullValue
		var date value.Value = value.NullValue
		if rng.Float64() >= o.NullRate {
			pid = value.Int(int64(rng.Intn(max(o.Products, 1))))
			date = value.String(fmt.Sprintf("2018-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)))
		}
		t.AppendRow(cid, pid, date)
	}
	return t
}

// Clickstream describes an Example 7-shaped workload: per session, a
// path of product-page visits ending in a purchase. Sessions revisit
// pages, producing the duplicate edges the collapse strategies differ on.
type Clickstream struct {
	Sessions int
	PathLen  int
	Products int
	Seed     int64
}

// Build returns the product graph (nodes only) plus the driving table
// with one column per path position (v0..v<PathLen-1>, tgt), each bound
// to a product node.
func (c Clickstream) Build() (*graph.Graph, *table.Table) {
	rng := rand.New(rand.NewSource(c.Seed))
	g := graph.New()
	products := make([]graph.NodeID, c.Products)
	for i := range products {
		products[i] = g.CreateNode([]string{"Product"}, value.Map{"id": value.Int(int64(i))}).ID
	}
	cols := make([]string, 0, c.PathLen+1)
	for i := 0; i < c.PathLen; i++ {
		cols = append(cols, fmt.Sprintf("v%d", i))
	}
	cols = append(cols, "tgt")
	t := table.New(cols...)
	for s := 0; s < c.Sessions; s++ {
		row := make([]value.Value, 0, c.PathLen+1)
		for i := 0; i < c.PathLen+1; i++ {
			p := products[rng.Intn(len(products))]
			row = append(row, value.Node{ID: int64(p)})
		}
		t.AppendRow(row...)
	}
	return g, t
}

// PathQuery renders the Example 7 MERGE pattern for the clickstream's
// column layout, e.g.
//
//	(v0)-[:TO]->(v1)-[:TO]->(v2)-[:BOUGHT]->(tgt)
func (c Clickstream) PathQuery() string {
	s := ""
	for i := 0; i < c.PathLen; i++ {
		if i > 0 {
			s += "-[:TO]->"
		}
		s += fmt.Sprintf("(v%d)", i)
	}
	return s + "-[:BOUGHT]->(tgt)"
}

// MergePaths describes an Example 3-shaped workload: a table of
// (user, product, vendor) node triples over a relationship-free graph.
type MergePaths struct {
	Rows     int
	Users    int
	Products int
	Vendors  int
	Seed     int64
}

// Build returns the node-only graph and the user/product/vendor table.
func (w MergePaths) Build() (*graph.Graph, *table.Table) {
	rng := rand.New(rand.NewSource(w.Seed))
	g := graph.New()
	mk := func(n int, label string) []graph.NodeID {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = g.CreateNode([]string{label}, value.Map{"id": value.Int(int64(i))}).ID
		}
		return out
	}
	users := mk(w.Users, "User")
	products := mk(w.Products, "Product")
	vendors := mk(w.Vendors, "Vendor")
	t := table.New("user", "product", "vendor")
	for i := 0; i < w.Rows; i++ {
		t.AppendRow(
			value.Node{ID: int64(users[rng.Intn(len(users))])},
			value.Node{ID: int64(products[rng.Intn(len(products))])},
			value.Node{ID: int64(vendors[rng.Intn(len(vendors))])},
		)
	}
	return g, t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Shuffle returns a random permutation of [0, n) for the given seed,
// used by determinism experiments to permute driving tables.
func Shuffle(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)
}
