package workload

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func TestMarketplaceBuild(t *testing.T) {
	m := DefaultMarketplace()
	g := m.Build()
	if g.NumNodes() != m.Vendors+m.Products+m.Users {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	wantRels := m.Vendors*m.OffersPerVendor + m.Users*m.OrdersPerUser
	if g.NumRels() != wantRels {
		t.Errorf("rels = %d, want %d", g.NumRels(), wantRels)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if len(g.NodeIDsByLabel("Vendor")) != m.Vendors {
		t.Error("vendor label index")
	}
}

func TestMarketplaceDeterminism(t *testing.T) {
	a := DefaultMarketplace().Build()
	b := DefaultMarketplace().Build()
	if graph.Fingerprint(a) != graph.Fingerprint(b) {
		t.Error("same seed must build the same graph")
	}
	m2 := DefaultMarketplace()
	m2.Seed = 99
	c := m2.Build()
	if graph.Fingerprint(a) == graph.Fingerprint(c) {
		t.Error("different seed should change the graph")
	}
}

func TestOrderImportBuild(t *testing.T) {
	o := DefaultOrderImport(1000)
	tbl := o.Build()
	if tbl.Len() != 1000 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	nulls := 0
	for i := 0; i < tbl.Len(); i++ {
		if value.IsNull(tbl.Get(i, "pid")) {
			nulls++
			if !value.IsNull(tbl.Get(i, "date")) {
				t.Fatal("null pid row must have null date (Example 5 shape)")
			}
		}
	}
	if nulls < 100 || nulls > 350 {
		t.Errorf("null rows = %d, want ~20%% of 1000", nulls)
	}
}

func TestClickstreamBuild(t *testing.T) {
	c := Clickstream{Sessions: 10, PathLen: 5, Products: 4, Seed: 2}
	g, tbl := c.Build()
	if g.NumNodes() != 4 || g.NumRels() != 0 {
		t.Errorf("graph: %d/%d", g.NumNodes(), g.NumRels())
	}
	if tbl.Len() != 10 || len(tbl.Columns()) != 6 {
		t.Errorf("table: %d rows, %d cols", tbl.Len(), len(tbl.Columns()))
	}
	q := c.PathQuery()
	want := "(v0)-[:TO]->(v1)-[:TO]->(v2)-[:TO]->(v3)-[:TO]->(v4)-[:BOUGHT]->(tgt)"
	if q != want {
		t.Errorf("PathQuery = %q", q)
	}
}

func TestMergePathsBuild(t *testing.T) {
	w := MergePaths{Rows: 50, Users: 5, Products: 3, Vendors: 2, Seed: 3}
	g, tbl := w.Build()
	if g.NumNodes() != 10 || g.NumRels() != 0 {
		t.Errorf("graph: %d/%d", g.NumNodes(), g.NumRels())
	}
	if tbl.Len() != 50 {
		t.Errorf("rows = %d", tbl.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		if _, ok := tbl.Get(i, "user").(value.Node); !ok {
			t.Fatal("user column must hold nodes")
		}
	}
}

func TestShuffle(t *testing.T) {
	p := Shuffle(10, 1)
	q := Shuffle(10, 1)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("same seed must give same permutation")
		}
	}
	seen := make([]bool, 10)
	for _, i := range p {
		seen[i] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("not a permutation: missing %d", i)
		}
	}
}
