package expr

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

// FuzzExprEval throws arbitrary strings at the expression pipeline:
// whatever parses must evaluate without panicking, and folding must be
// invisible — Fold(e) evaluates to the same value or the same
// error-ness as e, so constant folding can never turn an error into a
// value (which would let a pushed predicate prune a row the unfolded
// plan would have errored on) or a value into an error.
func FuzzExprEval(f *testing.F) {
	for _, seed := range []string{
		"1 + 2 * 3",
		"n.age > 10 + 20",
		"toUpper('a') + toLower('B')",
		"rand() < 0.5",
		"1 / 0",
		"abs('x')",
		"coalesce(null, $p, 3)",
		"[x IN range(1, 5) WHERE x % 2 = 0 | x * x]",
		"reduce(s = 0, x IN [1, 2, 3] | s + x)",
		"CASE n.kind WHEN 'a' THEN 1 ELSE 2 END",
		"CASE WHEN exists(n.p) THEN n.p END",
		"all(x IN [1, 2] WHERE x > 0)",
		"split('a,b', ',')[0]",
		"datetime(0).year",
		"substring('abc', 1, 99)",
		"{a: 1, b: [null]}.a IS NOT NULL",
		"n.list[1..toInteger('2')]",
		"timestamp() - timestamp()",
		"size(tail(reverse([1, 2, 3])))",
		"exists(1, 2)",
		"noSuchFn(1)",
		"'a' STARTS WITH null",
	} {
		f.Add(seed)
	}
	g := graph.New()
	n := g.CreateNode([]string{"P"}, value.Map{
		"age":  value.Int(30),
		"kind": value.String("a"),
		"list": value.List{value.Int(1), value.Int(2), value.Int(3)},
	})
	env := Env{"n": value.Node{ID: int64(n.ID)}}
	params := map[string]value.Value{"p": value.Int(7)}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1024 {
			return // deep nesting is the parser's fuzzer's problem
		}
		e, err := parser.ParseExpr(src)
		if err != nil {
			return
		}
		// Each phase gets a fresh step budget so runaway expressions
		// (nested comprehensions over huge ranges) terminate quickly; a
		// phase that exhausts it is skipped rather than compared, since
		// the cut-off point is not semantic.
		const steps = 1 << 18
		budget := func() *int64 { b := int64(steps); return &b }
		b1 := budget()
		ev := &Evaluator{Graph: g, Params: params, Budget: b1}
		v1, err1 := ev.Eval(e, env)
		b2 := budget()
		ev.Budget = b2
		folded := Fold(e, ev)
		b3 := budget()
		ev.Budget = b3
		v2, err2 := ev.Eval(folded, env)
		if *b1 <= 0 || *b2 <= 0 || *b3 <= 0 {
			return
		}
		if unstable(e) {
			return // rand()/timestamp() legitimately differ across evals
		}
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: folding changed error-ness: %v vs %v", src, err1, err2)
		}
		if err1 == nil && !value.Equivalent(v1, v2) {
			t.Fatalf("%q: folding changed the value: %v vs %v", src, v1, v2)
		}
	})
}

// unstable reports whether the expression calls a nondeterministic
// function, whose repeated evaluation may differ by design.
func unstable(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) bool {
		if f, ok := x.(*ast.FuncCall); ok {
			if d := LookupFunc(f.Name); d != nil && !d.Deterministic {
				found = true
			}
		}
		return !found
	})
	return found
}
