package expr

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
)

func TestLookupIsCaseInsensitive(t *testing.T) {
	for _, name := range []string{"toUpper", "TOUPPER", "tOuPpEr", "toupper"} {
		if LookupFunc(name) == nil {
			t.Errorf("LookupFunc(%q) = nil", name)
		}
	}
	if LookupFunc("noSuchFunction") != nil {
		t.Error("LookupFunc of an unknown name should be nil")
	}
	// The case-folded spellings evaluate identically.
	for _, src := range []string{"toUpper('ab')", "TOUPPER('ab')", "tOuPpEr('ab')"} {
		if got := mustEval(t, src, nil, nil); !value.Equivalent(got, value.String("AB")) {
			t.Errorf("%s = %v, want 'AB'", src, got)
		}
	}
}

func TestUniformArityErrors(t *testing.T) {
	cases := map[string]string{
		"abs()":                 "abs() expects 1 argument, got 0",
		"abs(1, 2)":             "abs() expects 1 argument, got 2",
		"substring('a')":        "substring() expects 2..3 arguments, got 1",
		"substring('a',1,2,3)":  "substring() expects 2..3 arguments, got 4",
		"exists(1, 2)":          "exists() expects 1 argument, got 2",
		"coalesce()":            "coalesce() expects at least 1 argument, got 0",
		"range(1)":              "range() expects 2..3 arguments, got 1",
		"round()":               "round() expects 1..2 arguments, got 0",
		"datetime(1, 2)":        "datetime() expects 0..1 arguments, got 2",
		"pi(1)":                 "pi() expects 0 arguments, got 1",
		"split('a')":            "split() expects 2 arguments, got 1",
		"replace('a', 'b')":     "replace() expects 3 arguments, got 2",
		"left('a')":             "left() expects 2 arguments, got 1",
		"reduce(s = 0, x IN [1] | s)": "", // not a registry call; sanity: no arity error
	}
	for src, want := range cases {
		_, err := evalStr(t, src, nil, nil, nil)
		if want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", src, err)
			}
			continue
		}
		if err == nil || err.Error() != want {
			t.Errorf("%s: error = %v, want %q", src, err, want)
		}
	}
}

// TestArityCheckedBeforeArguments pins the order: a wrong-arity call
// reports the arity error even when evaluating its arguments would
// itself error.
func TestArityCheckedBeforeArguments(t *testing.T) {
	_, err := evalStr(t, "abs(1/0, 2)", nil, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "abs() expects 1 argument, got 2") {
		t.Errorf("error = %v, want the arity error", err)
	}
}

func TestNewStringFunctions(t *testing.T) {
	cases := map[string]value.Value{
		"split('a,b,c', ',')":     value.List{value.String("a"), value.String("b"), value.String("c")},
		"split('abc', '')":        value.List{value.String("a"), value.String("b"), value.String("c")},
		"replace('aaa', 'a', 'b')": value.String("bbb"),
		"replace('abc', 'x', 'y')": value.String("abc"),
		"left('cypher', 2)":       value.String("cy"),
		"left('ab', 10)":          value.String("ab"),
		"right('cypher', 3)":      value.String("her"),
		"right('ab', 10)":         value.String("ab"),
		"lTrim('  a ')":           value.String("a "),
		"rTrim(' a  ')":           value.String(" a"),
		"reverse('abc')":          value.String("cba"),
		"reverse([1, 2, 3])":      value.List{value.Int(3), value.Int(2), value.Int(1)},
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if _, err := evalStr(t, "left('a', -1)", nil, nil, nil); err == nil {
		t.Error("left with negative n should error")
	}
}

func TestNewNumericFunctions(t *testing.T) {
	cases := map[string]value.Value{
		"sign(-3)":          value.Int(-1),
		"sign(0)":           value.Int(0),
		"sign(2.5)":         value.Int(1),
		"round(2.5)":        value.Float(3),
		"round(-2.5)":       value.Float(-3),
		"round(2.345, 2)":   value.Float(2.35),
		"round(1234.5, 0)":  value.Float(1235),
		"e()":               value.Float(math.E),
		"pi()":              value.Float(math.Pi),
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if _, err := evalStr(t, "round(1.5, 99)", nil, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "precision") {
		t.Errorf("round with out-of-range precision: error = %v", err)
	}
}

func TestNewListFunctions(t *testing.T) {
	cases := map[string]value.Value{
		"tail([1, 2, 3])": value.List{value.Int(2), value.Int(3)},
		"tail([])":        value.List{},
		"last([1, 2])":    value.Int(2),
		"last([])":        value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestTemporalFunctions(t *testing.T) {
	before := time.Now().UnixMilli()
	got := mustEval(t, "timestamp()", nil, nil)
	after := time.Now().UnixMilli()
	ts, ok := got.(value.Int)
	if !ok || int64(ts) < before || int64(ts) > after {
		t.Errorf("timestamp() = %v, want an Int in [%d, %d]", got, before, after)
	}

	dt := mustEval(t, "datetime(0)", nil, nil)
	m, ok := dt.(value.Map)
	if !ok {
		t.Fatalf("datetime(0) = %T, want a map", dt)
	}
	want := map[string]int64{
		"year": 1970, "month": 1, "day": 1,
		"hour": 0, "minute": 0, "second": 0, "millisecond": 0, "epochMillis": 0,
	}
	for k, v := range want {
		if !value.Equivalent(m[k], value.Int(v)) {
			t.Errorf("datetime(0).%s = %v, want %d", k, m[k], v)
		}
	}
	// 2019-08-26: the paper's publication month.
	m2 := mustEval(t, "datetime(1566777600000)", nil, nil).(value.Map)
	if !value.Equivalent(m2["year"], value.Int(2019)) || !value.Equivalent(m2["month"], value.Int(8)) {
		t.Errorf("datetime(1566777600000) = %v, want 2019-08", m2)
	}
}

func TestRandBoundsAndMetadata(t *testing.T) {
	for i := 0; i < 100; i++ {
		v := mustEval(t, "rand()", nil, nil)
		f, ok := v.(value.Float)
		if !ok || f < 0 || f >= 1 {
			t.Fatalf("rand() = %v, want a Float in [0, 1)", v)
		}
	}
	for _, name := range []string{"rand", "timestamp"} {
		d := LookupFunc(name)
		if d.Deterministic || d.Pure {
			t.Errorf("%s must be neither Deterministic nor Pure", name)
		}
		if !d.Total {
			t.Errorf("%s takes no arguments and cannot error; it should be Total", name)
		}
	}
}

// TestPlannerFacingMetadata pins the metadata the planner depends on:
// get these wrong and pushdown either hides errors or skips safe
// predicates.
func TestPlannerFacingMetadata(t *testing.T) {
	if d := LookupFunc("exists"); !d.Pure || !d.Total || !d.Deterministic || !d.BoolValued {
		t.Error("exists must be Pure+Total+Deterministic+BoolValued")
	}
	// Graph readers depend on the evaluator's graph, not only their
	// arguments: never Pure, or folding would bake in one snapshot.
	for _, name := range []string{"keys", "properties", "labels", "type", "startNode", "endNode"} {
		if d := LookupFunc(name); d.Pure {
			t.Errorf("%s reads the graph and must not be Pure", name)
		}
	}
	// Fallible functions must not claim totality.
	for _, name := range []string{"abs", "substring", "round", "left", "split"} {
		if d := LookupFunc(name); d.Total {
			t.Errorf("%s can raise type errors and must not be Total", name)
		}
	}
	if d := LookupFunc("coalesce"); !d.Total || d.MaxArgs != -1 {
		t.Error("coalesce must be Total and variadic")
	}
}

// TestNullPropagation is the satellite's null table: every scalar
// function except exists and coalesce maps a null argument to null.
func TestNullPropagation(t *testing.T) {
	cases := []string{
		"abs(null)", "sign(null)", "ceil(null)", "floor(null)", "round(null)",
		"round(null, 2)", "round(1.5, null)", "sqrt(null)", "exp(null)",
		"log(null)", "sin(null)", "toInteger(null)", "toFloat(null)",
		"toBoolean(null)", "toString(null)", "size(null)", "length(null)",
		"head(null)", "last(null)", "tail(null)", "reverse(null)",
		"range(null, 5)", "range(1, null)", "toUpper(null)", "toLower(null)",
		"trim(null)", "lTrim(null)", "rTrim(null)", "replace(null, 'a', 'b')",
		"replace('a', null, 'b')", "replace('a', 'b', null)", "split(null, ',')",
		"split('a', null)", "left(null, 1)", "left('a', null)", "right(null, 1)",
		"substring(null, 0)", "keys(null)", "properties(null)", "labels(null)",
		"type(null)", "id(null)", "startNode(null)", "endNode(null)",
		"nodes(null)", "relationships(null)", "datetime(null)",
	}
	for _, src := range cases {
		got, err := evalStr(t, src, nil, nil, nil)
		if err != nil {
			t.Errorf("%s: unexpected error %v", src, err)
			continue
		}
		if !value.IsNull(got) {
			t.Errorf("%s = %v, want null", src, got)
		}
	}
	// The two deliberate exceptions.
	if got := mustEval(t, "exists(null)", nil, nil); !value.Equivalent(got, value.Bool(false)) {
		t.Errorf("exists(null) = %v, want false", got)
	}
	if got := mustEval(t, "coalesce(null, 7)", nil, nil); !value.Equivalent(got, value.Int(7)) {
		t.Errorf("coalesce(null, 7) = %v, want 7", got)
	}
}
