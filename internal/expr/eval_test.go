package expr

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

// evalStr parses and evaluates an expression against an optional graph
// and environment.
func evalStr(t *testing.T, src string, g *graph.Graph, env Env, params map[string]value.Value) (value.Value, error) {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if g == nil {
		g = graph.New()
	}
	if env == nil {
		env = Env{}
	}
	ev := &Evaluator{Graph: g, Params: params}
	return ev.Eval(e, env)
}

func mustEval(t *testing.T, src string, g *graph.Graph, env Env) value.Value {
	t.Helper()
	v, err := evalStr(t, src, g, env, nil)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestLiteralAndArithmetic(t *testing.T) {
	cases := map[string]value.Value{
		"1 + 2 * 3":   value.Int(7),
		"(1 + 2) * 3": value.Int(9),
		"7 / 2":       value.Int(3),
		"7.0 / 2":     value.Float(3.5),
		"7 % 3":       value.Int(1),
		"2 ^ 10":      value.Float(1024),
		"-5":          value.Int(-5),
		"1.5 + 1":     value.Float(2.5),
		"'a' + 'b'":   value.String("ab"),
		"[1] + [2]":   value.List{value.Int(1), value.Int(2)},
		"null + 1":    value.NullValue,
		"true":        value.Bool(true),
		"null":        value.NullValue,
		"'x'":         value.String("x"),
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := map[string]value.Value{
		"1 = 1":                 value.Bool(true),
		"1 = 2":                 value.Bool(false),
		"1 <> 2":                value.Bool(true),
		"1 < 2":                 value.Bool(true),
		"2 <= 1":                value.Bool(false),
		"2 > 1":                 value.Bool(true),
		"1 >= 1":                value.Bool(true),
		"null = 1":              value.NullValue,
		"null = null":           value.NullValue,
		"1 = null OR true":      value.Bool(true),
		"null AND false":        value.Bool(false),
		"null AND true":         value.NullValue,
		"null OR false":         value.NullValue,
		"true XOR null":         value.NullValue,
		"NOT null":              value.NullValue,
		"NOT false":             value.Bool(true),
		"1 < 2 < 3":             value.Bool(true),
		"1 < 2 > 5":             value.Bool(false),
		"'ab' STARTS WITH 'a'":  value.Bool(true),
		"'ab' ENDS WITH 'b'":    value.Bool(true),
		"'abc' CONTAINS 'b'":    value.Bool(true),
		"'ab' STARTS WITH null": value.NullValue,
		"2 IN [1,2]":            value.Bool(true),
		"3 IN [1,2]":            value.Bool(false),
		"3 IN [1,null]":         value.NullValue,
		"null IN []":            value.Bool(false),
		"null IN [1]":           value.NullValue,
		"null IS NULL":          value.Bool(true),
		"1 IS NOT NULL":         value.Bool(true),
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand would error; short-circuiting must avoid it.
	if got := mustEval(t, "false AND 1/0 = 1", nil, nil); got != value.Bool(false) {
		t.Errorf("AND short circuit = %v", got)
	}
	if got := mustEval(t, "true OR 1/0 = 1", nil, nil); got != value.Bool(true) {
		t.Errorf("OR short circuit = %v", got)
	}
	if _, err := evalStr(t, "true AND 1/0 = 1", nil, nil, nil); err == nil {
		t.Error("non-short-circuit path should error")
	}
}

func TestIndexAndSlice(t *testing.T) {
	env := Env{"xs": value.List{value.Int(10), value.Int(20), value.Int(30)},
		"m": value.Map{"a": value.Int(1)}}
	cases := map[string]value.Value{
		"xs[0]":    value.Int(10),
		"xs[-1]":   value.Int(30),
		"xs[9]":    value.NullValue,
		"m['a']":   value.Int(1),
		"m['z']":   value.NullValue,
		"xs[1..3]": value.List{value.Int(20), value.Int(30)},
		"xs[..2]":  value.List{value.Int(10), value.Int(20)},
		"xs[-2..]": value.List{value.Int(20), value.Int(30)},
		"xs[3..1]": value.List{},
		"null[0]":  value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, env)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if _, err := evalStr(t, "xs['a']", nil, env, nil); err == nil {
		t.Error("string index into list should error")
	}
	if _, err := evalStr(t, "1[0]", nil, env, nil); err == nil {
		t.Error("indexing an integer should error")
	}
}

func TestPropertyAccess(t *testing.T) {
	g := graph.New()
	n := g.CreateNode([]string{"Product"}, value.Map{"name": value.String("laptop")})
	other := g.CreateNode(nil, nil)
	r, _ := g.CreateRel(n.ID, other.ID, "T", value.Map{"w": value.Int(3)})
	env := Env{
		"p":   value.Node{ID: int64(n.ID)},
		"r":   value.Rel{ID: int64(r.ID)},
		"m":   value.Map{"k": value.Int(9)},
		"nul": value.NullValue,
	}
	cases := map[string]value.Value{
		"p.name":    value.String("laptop"),
		"p.missing": value.NullValue,
		"r.w":       value.Int(3),
		"m.k":       value.Int(9),
		"nul.x":     value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, g, env)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if _, err := evalStr(t, "(1).x", g, env, nil); err == nil {
		t.Error("property access on integer should error")
	}
	// Deleted entity: lenient null (legacy Section 4.2 behaviour).
	g.DeleteRel(r.ID)
	g.DeleteNode(other.ID)
	if got := mustEval(t, "r.w", g, env); !value.IsNull(got) {
		t.Errorf("deleted rel prop = %v, want null", got)
	}
}

func TestCase(t *testing.T) {
	env := Env{"x": value.Int(2)}
	cases := map[string]value.Value{
		"CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' ELSE 'c' END": value.String("b"),
		"CASE x WHEN 9 THEN 'a' END":                          value.NullValue,
		"CASE WHEN x > 1 THEN 'big' ELSE 'small' END":         value.String("big"),
		"CASE WHEN x > 9 THEN 'big' END":                      value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, env)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestListComprehension(t *testing.T) {
	got := mustEval(t, "[x IN [1,2,3,4] WHERE x % 2 = 0 | x * 10]", nil, nil)
	want := value.List{value.Int(20), value.Int(40)}
	if !value.Equivalent(got, want) {
		t.Errorf("comprehension = %v", got)
	}
	got = mustEval(t, "[x IN [1,2]]", nil, nil)
	if !value.Equivalent(got, value.List{value.Int(1), value.Int(2)}) {
		t.Errorf("identity comprehension = %v", got)
	}
	if got := mustEval(t, "[x IN null | x]", nil, nil); !value.IsNull(got) {
		t.Errorf("comprehension over null = %v", got)
	}
}

func TestQuantifiers(t *testing.T) {
	cases := map[string]value.Value{
		"all(x IN [1,2] WHERE x > 0)":    value.Bool(true),
		"all(x IN [1,2] WHERE x > 1)":    value.Bool(false),
		"all(x IN [] WHERE x > 1)":       value.Bool(true),
		"all(x IN [1,null] WHERE x > 0)": value.NullValue,
		"any(x IN [1,2] WHERE x > 1)":    value.Bool(true),
		"any(x IN [1,2] WHERE x > 9)":    value.Bool(false),
		"any(x IN [null] WHERE x > 0)":   value.NullValue,
		"none(x IN [1,2] WHERE x > 9)":   value.Bool(true),
		"none(x IN [1,2] WHERE x > 1)":   value.Bool(false),
		"single(x IN [1,2] WHERE x = 1)": value.Bool(true),
		"single(x IN [1,1] WHERE x = 1)": value.Bool(false),
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestReduce(t *testing.T) {
	got := mustEval(t, "reduce(acc = 0, x IN [1,2,3] | acc + x)", nil, nil)
	if got != value.Int(6) {
		t.Errorf("reduce = %v", got)
	}
	got = mustEval(t, "reduce(s = '', w IN ['a','b'] | s + w)", nil, nil)
	if got != value.String("ab") {
		t.Errorf("reduce strings = %v", got)
	}
}

func TestParameters(t *testing.T) {
	params := map[string]value.Value{"lim": value.Int(5)}
	v, err := evalStr(t, "$lim + 1", nil, nil, params)
	if err != nil || v != value.Int(6) {
		t.Errorf("param eval = %v, %v", v, err)
	}
	if _, err := evalStr(t, "$missing", nil, nil, params); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestUnboundVariable(t *testing.T) {
	_, err := evalStr(t, "nope", nil, Env{}, nil)
	if err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Errorf("unbound variable error = %v", err)
	}
}

func TestEvalBoolTypeError(t *testing.T) {
	ev := &Evaluator{Graph: graph.New()}
	e, _ := parser.ParseExpr("1 + 1")
	if _, err := ev.EvalBool(e, Env{}); err == nil {
		t.Error("integer predicate should error")
	}
}
