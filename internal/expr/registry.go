package expr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/value"
)

// FuncDef is the registry entry for one scalar function: its canonical
// name, arity bounds, semantic metadata and implementation. The
// metadata is what the planner consumes — see internal/match (pushdown
// totality) and Fold (plan-time constant folding) — so the flags must
// be conservative: understating Pure/Total/Deterministic only loses an
// optimization, overstating one changes query results.
type FuncDef struct {
	// Name is the canonical (display-cased) name; lookup is
	// case-insensitive per Cypher.
	Name string
	// MinArgs/MaxArgs bound the accepted argument count; MaxArgs < 0
	// means variadic (no upper bound).
	MinArgs, MaxArgs int
	// Pure: the result depends only on the argument values — no graph
	// reads, no clock, no randomness. Pure+Deterministic functions are
	// eligible for plan-time constant folding.
	Pure bool
	// Total: evaluation never returns an error, for arguments of any
	// kind (null-in/null-out is fine; a type error is not).
	Total bool
	// Deterministic: same arguments (and same graph, for impure
	// functions) always produce the same result. Nondeterministic
	// functions (rand, timestamp) must never be evaluated twice for one
	// row, which rules them out of predicate pushdown.
	Deterministic bool
	// BoolValued: the result is always a boolean or null, so the call
	// is safe in predicate position (EvalBool errors on other kinds).
	BoolValued bool
	// Sig is the display signature for :functions and the docs.
	Sig string
	// Doc is a one-line description.
	Doc string
	// Fn is the implementation; the dispatcher checks arity before
	// evaluating arguments, so Fn sees len(args) within bounds.
	Fn scalarFunc
}

// registry maps lower-cased names to definitions.
var registry = map[string]*FuncDef{}

func register(d FuncDef) {
	key := strings.ToLower(d.Name)
	if _, dup := registry[key]; dup {
		panic("duplicate function registration: " + d.Name)
	}
	if d.MaxArgs >= 0 && d.MaxArgs < d.MinArgs {
		panic("invalid arity bounds for " + d.Name)
	}
	def := d
	registry[key] = &def
}

// LookupFunc resolves a function name case-insensitively, returning nil
// when no scalar function is registered under it.
func LookupFunc(name string) *FuncDef {
	return registry[strings.ToLower(name)]
}

// CheckArity validates an argument count against the definition's
// bounds, returning the uniform registry error on mismatch.
func (d *FuncDef) CheckArity(n int) error {
	if n >= d.MinArgs && (d.MaxArgs < 0 || n <= d.MaxArgs) {
		return nil
	}
	return fmt.Errorf("%s() expects %s, got %d", d.Name, d.arityDesc(), n)
}

func (d *FuncDef) arityDesc() string {
	plural := func(n int) string {
		if n == 1 {
			return "1 argument"
		}
		return fmt.Sprintf("%d arguments", n)
	}
	switch {
	case d.MaxArgs < 0:
		return "at least " + plural(d.MinArgs)
	case d.MinArgs == d.MaxArgs:
		return plural(d.MinArgs)
	default:
		return fmt.Sprintf("%d..%d arguments", d.MinArgs, d.MaxArgs)
	}
}

// Defs returns all registered definitions sorted by name (used by the
// shell's :functions, the docs cross-check and the public API).
func Defs() []*FuncDef {
	out := make([]*FuncDef, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].Name) < strings.ToLower(out[j].Name)
	})
	return out
}

// Functions returns the sorted lower-cased names of all registered
// scalar functions (used by the REPL for diagnostics).
func Functions() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	registerNumeric()
	registerConversions()
	registerListFuncs()
	registerGraphFuncs()
	registerStringFuncs()
	registerTemporal()
}

func registerNumeric() {
	register(FuncDef{
		Name: "abs", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "abs(x)", Doc: "Absolute value of a number; integers stay integral.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Int:
				if x < 0 {
					return -x, nil
				}
				return x, nil
			case value.Float:
				return value.Float(math.Abs(float64(x))), nil
			}
			return nil, fmt.Errorf("abs() expects a number, got %s", args[0].Kind())
		}),
	})
	register(FuncDef{
		Name: "sign", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "sign(x)", Doc: "-1, 0 or 1 according to the sign of a number.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			x, err := numArg("sign", args[0])
			if err != nil {
				return nil, err
			}
			switch {
			case x > 0:
				return value.Int(1), nil
			case x < 0:
				return value.Int(-1), nil
			default:
				return value.Int(0), nil
			}
		}),
	})
	mathDefs := []struct {
		name, doc string
		f         func(float64) float64
	}{
		{"ceil", "Smallest integer-valued float >= x.", math.Ceil},
		{"floor", "Largest integer-valued float <= x.", math.Floor},
		{"sqrt", "Square root of x.", math.Sqrt},
		{"exp", "e raised to the power x.", math.Exp},
		{"log", "Natural logarithm of x.", math.Log},
		{"log10", "Base-10 logarithm of x.", math.Log10},
		{"sin", "Sine of x (radians).", math.Sin},
		{"cos", "Cosine of x (radians).", math.Cos},
		{"tan", "Tangent of x (radians).", math.Tan},
		{"asin", "Arcsine of x, in radians.", math.Asin},
		{"acos", "Arccosine of x, in radians.", math.Acos},
		{"atan", "Arctangent of x, in radians.", math.Atan},
	}
	for _, md := range mathDefs {
		md := md
		register(FuncDef{
			Name: md.name, MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
			Sig: md.name + "(x)", Doc: md.doc,
			Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
				x, err := numArg(md.name, args[0])
				if err != nil {
					return nil, err
				}
				return value.Float(md.f(x)), nil
			}),
		})
	}
	register(FuncDef{
		Name: "round", MinArgs: 1, MaxArgs: 2, Pure: true, Deterministic: true,
		Sig: "round(x [, n])", Doc: "x rounded to n decimal places (default 0), half away from zero.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			x, err := numArg("round", args[0])
			if err != nil {
				return nil, err
			}
			if len(args) == 1 {
				return value.Float(math.Round(x)), nil
			}
			if value.IsNull(args[1]) {
				return value.NullValue, nil
			}
			n, ok := value.AsInt(args[1])
			if !ok || n < 0 || n > 15 {
				return nil, fmt.Errorf("round() precision must be an integer in 0..15, got %s", args[1])
			}
			scale := math.Pow(10, float64(n))
			return value.Float(math.Round(x*scale) / scale), nil
		}),
	})
	register(FuncDef{
		Name: "pi", MinArgs: 0, MaxArgs: 0, Pure: true, Total: true, Deterministic: true,
		Sig: "pi()", Doc: "The constant pi.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return value.Float(math.Pi), nil
		},
	})
	register(FuncDef{
		Name: "e", MinArgs: 0, MaxArgs: 0, Pure: true, Total: true, Deterministic: true,
		Sig: "e()", Doc: "The constant e, the base of natural logarithms.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return value.Float(math.E), nil
		},
	})
	register(FuncDef{
		Name: "rand", MinArgs: 0, MaxArgs: 0, Total: true,
		Sig: "rand()", Doc: "A uniform random float in [0, 1); nondeterministic.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return value.Float(rand.Float64()), nil
		},
	})
}

func registerConversions() {
	register(FuncDef{
		Name: "toInteger", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "toInteger(x)", Doc: "Convert a number or numeric string to an integer; null when unparseable.",
		Fn:  toIntegerFunc,
	})
	register(FuncDef{
		Name: "toInt", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "toInt(x)", Doc: "Alias of toInteger().",
		Fn:  toIntegerFunc,
	})
	register(FuncDef{
		Name: "toFloat", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "toFloat(x)", Doc: "Convert a number or numeric string to a float; null when unparseable.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Int:
				return value.Float(float64(x)), nil
			case value.Float:
				return x, nil
			case value.String:
				f, err := parseFloatValue(string(x))
				if err != nil {
					return value.NullValue, nil
				}
				return value.Float(f), nil
			}
			return nil, fmt.Errorf("toFloat() expects a number or string")
		}),
	})
	register(FuncDef{
		Name: "toBoolean", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "toBoolean(x)", Doc: "Convert a boolean or 'true'/'false' string to a boolean; null otherwise.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Bool:
				return x, nil
			case value.String:
				switch strings.ToLower(strings.TrimSpace(string(x))) {
				case "true":
					return value.Bool(true), nil
				case "false":
					return value.Bool(false), nil
				}
				return value.NullValue, nil
			}
			return nil, fmt.Errorf("toBoolean() expects a boolean or string")
		}),
	})
	register(FuncDef{
		Name: "toString", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "toString(x)", Doc: "Render an integer, float, boolean or string as a string.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.String:
				return x, nil
			case value.Int, value.Float, value.Bool:
				return value.String(strings.Trim(x.String(), "'")), nil
			}
			return nil, fmt.Errorf("toString() expects a scalar, got %s", args[0].Kind())
		}),
	})
}

func registerListFuncs() {
	register(FuncDef{
		Name: "size", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "size(x)", Doc: "Number of elements of a list or map, or characters of a string.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.List:
				return value.Int(int64(len(x))), nil
			case value.String:
				return value.Int(int64(len([]rune(string(x))))), nil
			case value.Map:
				return value.Int(int64(len(x))), nil
			}
			return nil, fmt.Errorf("size() expects a list, string or map, got %s", args[0].Kind())
		}),
	})
	register(FuncDef{
		Name: "length", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "length(x)", Doc: "Length of a path (relationship count), list or string.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Path:
				return value.Int(int64(x.Len())), nil
			case value.List:
				return value.Int(int64(len(x))), nil
			case value.String:
				return value.Int(int64(len([]rune(string(x))))), nil
			}
			return nil, fmt.Errorf("length() expects a path, list or string, got %s", args[0].Kind())
		}),
	})
	register(FuncDef{
		Name: "head", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "head(list)", Doc: "First element of a list; null when empty.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			lst, ok := value.AsList(args[0])
			if !ok {
				return nil, fmt.Errorf("head() expects a list")
			}
			if len(lst) == 0 {
				return value.NullValue, nil
			}
			return lst[0], nil
		}),
	})
	register(FuncDef{
		Name: "last", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "last(list)", Doc: "Last element of a list; null when empty.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			lst, ok := value.AsList(args[0])
			if !ok {
				return nil, fmt.Errorf("last() expects a list")
			}
			if len(lst) == 0 {
				return value.NullValue, nil
			}
			return lst[len(lst)-1], nil
		}),
	})
	register(FuncDef{
		Name: "tail", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "tail(list)", Doc: "The list without its first element; empty stays empty.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			lst, ok := value.AsList(args[0])
			if !ok {
				return nil, fmt.Errorf("tail() expects a list")
			}
			if len(lst) == 0 {
				return value.List{}, nil
			}
			out := make(value.List, len(lst)-1)
			copy(out, lst[1:])
			return out, nil
		}),
	})
	register(FuncDef{
		Name: "reverse", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "reverse(x)", Doc: "A list or string with its elements in reverse order.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.List:
				out := make(value.List, len(x))
				for i, v := range x {
					out[len(x)-1-i] = v
				}
				return out, nil
			case value.String:
				rs := []rune(string(x))
				for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
					rs[i], rs[j] = rs[j], rs[i]
				}
				return value.String(rs), nil
			}
			return nil, fmt.Errorf("reverse() expects a list or string")
		}),
	})
	register(FuncDef{
		Name: "range", MinArgs: 2, MaxArgs: 3, Pure: true, Deterministic: true,
		Sig: "range(start, end [, step])", Doc: "Integers from start to end inclusive, stepping by step (default 1).",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			var nums [3]int64
			nums[2] = 1
			for i, a := range args {
				n, ok := value.AsInt(a)
				if !ok {
					return nil, fmt.Errorf("range() expects integers")
				}
				nums[i] = n
			}
			start, end, step := nums[0], nums[1], nums[2]
			if step == 0 {
				return nil, fmt.Errorf("range() step must not be zero")
			}
			// Count elements up front (in floats, immune to int64
			// overflow) both to preallocate and to refuse absurd ranges
			// instead of exhausting memory.
			const maxRangeLen = 1 << 24
			span := (float64(end) - float64(start)) / float64(step)
			if span < 0 {
				return value.List{}, nil
			}
			if span >= maxRangeLen {
				return nil, fmt.Errorf("range() result exceeds %d elements", maxRangeLen)
			}
			count := int64(span) + 1
			out := make(value.List, 0, count)
			for i, v := int64(0), start; i < count; i, v = i+1, v+step {
				out = append(out, value.Int(v))
			}
			return out, nil
		}),
	})
	register(FuncDef{
		Name: "coalesce", MinArgs: 1, MaxArgs: -1, Pure: true, Total: true, Deterministic: true,
		Sig: "coalesce(v, ...)", Doc: "The first non-null argument; null when all are null.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			for _, a := range args {
				if !value.IsNull(a) {
					return a, nil
				}
			}
			return value.NullValue, nil
		},
	})
}

func registerGraphFuncs() {
	register(FuncDef{
		Name: "exists", MinArgs: 1, MaxArgs: 1, Pure: true, Total: true, Deterministic: true, BoolValued: true,
		Sig: "exists(v)", Doc: "True when the value is not null; exists(n.prop) tests property presence.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return value.Bool(!value.IsNull(args[0])), nil
		},
	})
	register(FuncDef{
		Name: "keys", MinArgs: 1, MaxArgs: 1, Deterministic: true,
		Sig: "keys(x)", Doc: "Sorted property keys of a node, relationship or map.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			m, err := ev.entityProps(args[0], "keys")
			if err != nil {
				return nil, err
			}
			out := make(value.List, 0, len(m))
			for _, k := range m.Keys() {
				out = append(out, value.String(k))
			}
			return out, nil
		}),
	})
	register(FuncDef{
		Name: "properties", MinArgs: 1, MaxArgs: 1, Deterministic: true,
		Sig: "properties(x)", Doc: "The property map of a node, relationship or map.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return ev.entityProps(args[0], "properties")
		}),
	})
	register(FuncDef{
		Name: "id", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "id(x)", Doc: "The internal identifier of a node or relationship.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Node:
				return value.Int(x.ID), nil
			case value.Rel:
				return value.Int(x.ID), nil
			}
			return nil, fmt.Errorf("id() expects a node or relationship, got %s", args[0].Kind())
		}),
	})
	register(FuncDef{
		Name: "labels", MinArgs: 1, MaxArgs: 1, Deterministic: true,
		Sig: "labels(n)", Doc: "The sorted labels of a node.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			n, ok := args[0].(value.Node)
			if !ok {
				return nil, fmt.Errorf("labels() expects a node, got %s", args[0].Kind())
			}
			gn := ev.Graph.Node(graphNodeID(n))
			if gn == nil {
				return value.NullValue, nil
			}
			ls := gn.SortedLabels()
			out := make(value.List, len(ls))
			for i, l := range ls {
				out[i] = value.String(l)
			}
			return out, nil
		}),
	})
	register(FuncDef{
		Name: "type", MinArgs: 1, MaxArgs: 1, Deterministic: true,
		Sig: "type(r)", Doc: "The type of a relationship.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			r, ok := args[0].(value.Rel)
			if !ok {
				return nil, fmt.Errorf("type() expects a relationship, got %s", args[0].Kind())
			}
			gr := ev.Graph.Rel(graphRelID(r))
			if gr == nil {
				return value.NullValue, nil
			}
			return value.String(gr.Type), nil
		}),
	})
	register(FuncDef{
		Name: "startNode", MinArgs: 1, MaxArgs: 1, Deterministic: true,
		Sig: "startNode(r)", Doc: "The source node of a relationship.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			r, ok := args[0].(value.Rel)
			if !ok {
				return nil, fmt.Errorf("startNode() expects a relationship")
			}
			gr := ev.Graph.Rel(graphRelID(r))
			if gr == nil {
				return value.NullValue, nil
			}
			return value.Node{ID: int64(gr.Src)}, nil
		}),
	})
	register(FuncDef{
		Name: "endNode", MinArgs: 1, MaxArgs: 1, Deterministic: true,
		Sig: "endNode(r)", Doc: "The target node of a relationship.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			r, ok := args[0].(value.Rel)
			if !ok {
				return nil, fmt.Errorf("endNode() expects a relationship")
			}
			gr := ev.Graph.Rel(graphRelID(r))
			if gr == nil {
				return value.NullValue, nil
			}
			return value.Node{ID: int64(gr.Tgt)}, nil
		}),
	})
	register(FuncDef{
		Name: "nodes", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "nodes(p)", Doc: "The nodes of a path, in traversal order.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			p, ok := args[0].(value.Path)
			if !ok {
				return nil, fmt.Errorf("nodes() expects a path, got %s", args[0].Kind())
			}
			out := make(value.List, len(p.Nodes))
			for i, id := range p.Nodes {
				out[i] = value.Node{ID: id}
			}
			return out, nil
		}),
	})
	register(FuncDef{
		Name: "relationships", MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
		Sig: "relationships(p)", Doc: "The relationships of a path, in traversal order.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			p, ok := args[0].(value.Path)
			if !ok {
				return nil, fmt.Errorf("relationships() expects a path, got %s", args[0].Kind())
			}
			out := make(value.List, len(p.Rels))
			for i, id := range p.Rels {
				out[i] = value.Rel{ID: id}
			}
			return out, nil
		}),
	})
}

func registerStringFuncs() {
	stringDefs := []struct {
		name, doc string
		f         func(string) string
	}{
		{"toUpper", "The string uppercased.", strings.ToUpper},
		{"toLower", "The string lowercased.", strings.ToLower},
		{"trim", "The string with leading and trailing whitespace removed.", strings.TrimSpace},
		{"lTrim", "The string with leading whitespace removed.", func(s string) string { return strings.TrimLeft(s, " \t\r\n") }},
		{"rTrim", "The string with trailing whitespace removed.", func(s string) string { return strings.TrimRight(s, " \t\r\n") }},
	}
	for _, sd := range stringDefs {
		sd := sd
		register(FuncDef{
			Name: sd.name, MinArgs: 1, MaxArgs: 1, Pure: true, Deterministic: true,
			Sig: sd.name + "(s)", Doc: sd.doc,
			Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
				s, err := strArg(sd.name, args[0])
				if err != nil {
					return nil, err
				}
				return value.String(sd.f(s)), nil
			}),
		})
	}
	register(FuncDef{
		Name: "replace", MinArgs: 3, MaxArgs: 3, Pure: true, Deterministic: true,
		Sig: "replace(s, from, to)", Doc: "The string with every occurrence of from replaced by to.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("replace", args[0])
			if err != nil {
				return nil, err
			}
			if value.IsNull(args[1]) || value.IsNull(args[2]) {
				return value.NullValue, nil
			}
			from, err := strArg("replace", args[1])
			if err != nil {
				return nil, err
			}
			to, err := strArg("replace", args[2])
			if err != nil {
				return nil, err
			}
			return value.String(strings.ReplaceAll(s, from, to)), nil
		}),
	})
	register(FuncDef{
		Name: "split", MinArgs: 2, MaxArgs: 2, Pure: true, Deterministic: true,
		Sig: "split(s, sep)", Doc: "The list of substrings of s delimited by sep.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("split", args[0])
			if err != nil {
				return nil, err
			}
			if value.IsNull(args[1]) {
				return value.NullValue, nil
			}
			sep, err := strArg("split", args[1])
			if err != nil {
				return nil, err
			}
			parts := strings.Split(s, sep)
			out := make(value.List, len(parts))
			for i, p := range parts {
				out[i] = value.String(p)
			}
			return out, nil
		}),
	})
	register(FuncDef{
		Name: "left", MinArgs: 2, MaxArgs: 2, Pure: true, Deterministic: true,
		Sig: "left(s, n)", Doc: "The first n characters of the string.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("left", args[0])
			if err != nil {
				return nil, err
			}
			n, ok := value.AsInt(args[1])
			if !ok || n < 0 {
				return nil, fmt.Errorf("left() expects a non-negative integer")
			}
			rs := []rune(s)
			if n > int64(len(rs)) {
				n = int64(len(rs))
			}
			return value.String(rs[:n]), nil
		}),
	})
	register(FuncDef{
		Name: "right", MinArgs: 2, MaxArgs: 2, Pure: true, Deterministic: true,
		Sig: "right(s, n)", Doc: "The last n characters of the string.",
		Fn: nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("right", args[0])
			if err != nil {
				return nil, err
			}
			n, ok := value.AsInt(args[1])
			if !ok || n < 0 {
				return nil, fmt.Errorf("right() expects a non-negative integer")
			}
			rs := []rune(s)
			if n > int64(len(rs)) {
				n = int64(len(rs))
			}
			return value.String(rs[int64(len(rs))-n:]), nil
		}),
	})
	register(FuncDef{
		Name: "substring", MinArgs: 2, MaxArgs: 3, Pure: true, Deterministic: true,
		Sig: "substring(s, start [, len])", Doc: "The substring starting at 0-based start, optionally length-limited.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			if value.IsNull(args[0]) {
				return value.NullValue, nil
			}
			s, err := strArg("substring", args[0])
			if err != nil {
				return nil, err
			}
			start, ok := value.AsInt(args[1])
			if !ok || start < 0 {
				return nil, fmt.Errorf("substring() start must be a non-negative integer")
			}
			rs := []rune(s)
			if start > int64(len(rs)) {
				start = int64(len(rs))
			}
			end := int64(len(rs))
			if len(args) == 3 {
				n, ok := value.AsInt(args[2])
				if !ok || n < 0 {
					return nil, fmt.Errorf("substring() length must be a non-negative integer")
				}
				if start+n < end {
					end = start + n
				}
			}
			return value.String(rs[start:end]), nil
		},
	})
}

func registerTemporal() {
	register(FuncDef{
		Name: "timestamp", MinArgs: 0, MaxArgs: 0, Total: true,
		Sig: "timestamp()", Doc: "The current time as milliseconds since the Unix epoch; nondeterministic.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return value.Int(time.Now().UnixMilli()), nil
		},
	})
	register(FuncDef{
		Name: "datetime", MinArgs: 0, MaxArgs: 1,
		Sig: "datetime([epochMillis])", Doc: "UTC calendar components of an epoch-millisecond instant (default: now) as a map.",
		Fn: func(ev *Evaluator, args []value.Value) (value.Value, error) {
			var ms int64
			if len(args) == 0 {
				ms = time.Now().UnixMilli()
			} else {
				if value.IsNull(args[0]) {
					return value.NullValue, nil
				}
				var ok bool
				ms, ok = value.AsInt(args[0])
				if !ok {
					return nil, fmt.Errorf("datetime() expects epoch milliseconds, got %s", args[0].Kind())
				}
			}
			t := time.UnixMilli(ms).UTC()
			return value.Map{
				"year":        value.Int(int64(t.Year())),
				"month":       value.Int(int64(t.Month())),
				"day":         value.Int(int64(t.Day())),
				"hour":        value.Int(int64(t.Hour())),
				"minute":      value.Int(int64(t.Minute())),
				"second":      value.Int(int64(t.Second())),
				"millisecond": value.Int(int64(t.Nanosecond() / 1e6)),
				"epochMillis": value.Int(ms),
			}, nil
		},
	})
}
