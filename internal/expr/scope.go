package expr

import "repro/internal/value"

// scope is the environment expressions evaluate under: the driving-table
// record (a flat map, shared and never mutated here) plus a chain of
// binder frames pushed by list comprehensions, quantifiers and reduce.
//
// Binders used to copy the whole map per element (Env.With), which made
// a comprehension over an n-column record O(n) per element. A frame is
// one allocation and lookup walks the chain innermost-first, so nested
// binders shadow outer ones and the base record closure-style — the
// lambda-environment design the registry refactor adopted from the
// related evaluators.
type scope struct {
	env   Env
	frame *frame
}

// frame is one binder's variable, chained towards the outermost binder.
type frame struct {
	name string
	val  value.Value
	up   *frame
}

// bind pushes one binding; the receiver is unchanged.
func (s scope) bind(name string, v value.Value) scope {
	return scope{env: s.env, frame: &frame{name: name, val: v, up: s.frame}}
}

// lookup resolves a variable, innermost frame first, then the base record.
func (s scope) lookup(name string) (value.Value, bool) {
	for f := s.frame; f != nil; f = f.up {
		if f.name == name {
			return f.val, true
		}
	}
	v, ok := s.env[name]
	return v, ok
}
