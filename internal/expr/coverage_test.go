package expr

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

func TestEvalPropMap(t *testing.T) {
	g := graph.New()
	ev := &Evaluator{Graph: g}

	// nil expression -> empty map.
	m, err := ev.EvalPropMap(nil, Env{})
	if err != nil || len(m) != 0 {
		t.Errorf("nil prop map: %v, %v", m, err)
	}

	e, _ := parser.ParseExpr(`{a: 1, b: 'x'}`)
	m, err = ev.EvalPropMap(e, Env{})
	if err != nil || m["a"] != value.Int(1) {
		t.Errorf("prop map: %v, %v", m, err)
	}

	// Non-map expression errors.
	e2, _ := parser.ParseExpr(`42`)
	if _, err := ev.EvalPropMap(e2, Env{}); err == nil {
		t.Error("non-map should error")
	}

	// Parameter-backed map.
	ev.Params = map[string]value.Value{"p": value.Map{"k": value.Int(9)}}
	e3, _ := parser.ParseExpr(`$p`)
	m, err = ev.EvalPropMap(e3, Env{})
	if err != nil || m["k"] != value.Int(9) {
		t.Errorf("param prop map: %v, %v", m, err)
	}
}

func TestUnaryEdgeCases(t *testing.T) {
	if got := mustEval(t, "+5", nil, nil); got != value.Int(5) {
		t.Errorf("+5 = %v", got)
	}
	if got := mustEval(t, "+(1.5)", nil, nil); got != value.Float(1.5) {
		t.Errorf("+1.5 = %v", got)
	}
	env := Env{"nul": value.NullValue}
	if got := mustEval(t, "+nul", nil, env); !value.IsNull(got) {
		t.Errorf("+null = %v", got)
	}
	if _, err := evalStr(t, "+'a'", nil, nil, nil); err == nil {
		t.Error("unary + on string should error")
	}
	if _, err := evalStr(t, "-'a'", nil, nil, nil); err == nil {
		t.Error("unary - on string should error")
	}
	if got := mustEval(t, "--3", nil, nil); got != value.Int(3) {
		t.Errorf("--3 = %v", got)
	}
}

func TestSliceEdgeCases(t *testing.T) {
	env := Env{"xs": value.List{value.Int(1), value.Int(2), value.Int(3)}, "nul": value.NullValue}
	if got := mustEval(t, "xs[nul..2]", nil, env); !value.IsNull(got) {
		t.Errorf("null bound = %v", got)
	}
	if got := mustEval(t, "xs[0..nul]", nil, env); !value.IsNull(got) {
		t.Errorf("null to-bound = %v", got)
	}
	if _, err := evalStr(t, "xs['a'..2]", nil, env, nil); err == nil {
		t.Error("string bound should error")
	}
	if _, err := evalStr(t, "xs[1..'b']", nil, env, nil); err == nil {
		t.Error("string to-bound should error")
	}
	if _, err := evalStr(t, "(1)[0..1]", nil, env, nil); err == nil {
		t.Error("slicing an int should error")
	}
	// Negative bounds clamp.
	if got := mustEval(t, "xs[-99..99]", nil, env); len(got.(value.List)) != 3 {
		t.Errorf("clamped slice = %v", got)
	}
}

func TestReduceEdgeCases(t *testing.T) {
	env := Env{"nul": value.NullValue}
	if got := mustEval(t, "reduce(a = 1, x IN nul | a + x)", nil, env); !value.IsNull(got) {
		t.Errorf("reduce over null = %v", got)
	}
	if _, err := evalStr(t, "reduce(a = 1, x IN 42 | a + x)", nil, env, nil); err == nil {
		t.Error("reduce over int should error")
	}
	if _, err := evalStr(t, "reduce(a = 1, x IN [1] | a + 'x')", nil, env, nil); err == nil {
		t.Error("error inside reduce body should surface")
	}
}

func TestQuantifierAndComprehensionErrors(t *testing.T) {
	if _, err := evalStr(t, "all(x IN 42 WHERE x > 0)", nil, nil, nil); err == nil {
		t.Error("quantifier over int should error")
	}
	if _, err := evalStr(t, "all(x IN [1] WHERE x + 1)", nil, nil, nil); err == nil {
		t.Error("non-boolean quantifier predicate should error")
	}
	if _, err := evalStr(t, "[x IN 42 | x]", nil, nil, nil); err == nil {
		t.Error("comprehension over int should error")
	}
	if _, err := evalStr(t, "[x IN [1] WHERE x + 1 | x]", nil, nil, nil); err == nil {
		t.Error("non-boolean comprehension filter should error")
	}
}

func TestEntityPropsBranches(t *testing.T) {
	g := graph.New()
	a := g.CreateNode(nil, value.Map{"x": value.Int(1)})
	b := g.CreateNode(nil, nil)
	r, _ := g.CreateRel(a.ID, b.ID, "T", value.Map{"w": value.Int(2)})
	env := Env{
		"n": value.Node{ID: int64(a.ID)},
		"r": value.Rel{ID: int64(r.ID)},
	}
	if got := mustEval(t, "properties(r)", g, env); !value.Equivalent(got, value.Map{"w": value.Int(2)}) {
		t.Errorf("properties(r) = %v", got)
	}
	if got := mustEval(t, "keys(r)", g, env); !value.Equivalent(got, value.List{value.String("w")}) {
		t.Errorf("keys(r) = %v", got)
	}
	if _, err := evalStr(t, "properties(1)", g, env, nil); err == nil {
		t.Error("properties of int should error")
	}
	// Deleted entities read as empty maps.
	g.DeleteRel(r.ID)
	if got := mustEval(t, "properties(r)", g, env); len(got.(value.Map)) != 0 {
		t.Errorf("properties of deleted rel = %v", got)
	}
	g.DeleteNode(b.ID)
	env["gone"] = value.Node{ID: int64(b.ID)}
	if got := mustEval(t, "properties(gone)", g, env); len(got.(value.Map)) != 0 {
		t.Errorf("properties of deleted node = %v", got)
	}
}

func TestExistsArity(t *testing.T) {
	if _, err := evalStr(t, "exists(1, 2)", nil, nil, nil); err == nil {
		t.Error("exists with two args should error")
	}
	env := Env{"m": value.Map{"k": value.Int(1)}}
	if got := mustEval(t, "exists(m.k)", nil, env); got != value.Bool(true) {
		t.Errorf("exists(map key) = %v", got)
	}
	if got := mustEval(t, "exists(m.z)", nil, env); got != value.Bool(false) {
		t.Errorf("exists(missing map key) = %v", got)
	}
}

func TestDeletedEntityFunctionResults(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"A"}, nil)
	b := g.CreateNode(nil, nil)
	r, _ := g.CreateRel(a.ID, b.ID, "T", nil)
	env := Env{"n": value.Node{ID: int64(a.ID)}, "r": value.Rel{ID: int64(r.ID)}}
	g.DeleteRel(r.ID)
	g.DeleteNode(a.ID)
	// Graph functions on deleted entities return null rather than erroring
	// (the legacy dialect relies on this lenience).
	for _, src := range []string{"labels(n)", "type(r)", "startNode(r)", "endNode(r)"} {
		if got := mustEval(t, src, g, env); !value.IsNull(got) {
			t.Errorf("%s on deleted = %v, want null", src, got)
		}
	}
}
