package expr

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

func TestMathFuncs(t *testing.T) {
	cases := map[string]value.Value{
		"abs(-5)":    value.Int(5),
		"abs(-1.5)":  value.Float(1.5),
		"sign(-3)":   value.Int(-1),
		"sign(0)":    value.Int(0),
		"sign(2.5)":  value.Int(1),
		"ceil(1.2)":  value.Float(2),
		"floor(1.8)": value.Float(1),
		"round(1.5)": value.Float(2),
		"sqrt(16)":   value.Float(4),
		"exp(0)":     value.Float(1),
		"log(1)":     value.Float(0),
		"log10(100)": value.Float(2),
		"sin(0)":     value.Float(0),
		"cos(0)":     value.Float(1),
		"tan(0)":     value.Float(0),
		"asin(0)":    value.Float(0),
		"acos(1)":    value.Float(0),
		"atan(0)":    value.Float(0),
		"abs(null)":  value.NullValue,
		"sqrt(null)": value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if got := mustEval(t, "pi()", nil, nil); math.Abs(float64(got.(value.Float))-math.Pi) > 1e-15 {
		t.Error("pi()")
	}
	if _, err := evalStr(t, "sqrt('a')", nil, nil, nil); err == nil {
		t.Error("sqrt of string should error")
	}
	if _, err := evalStr(t, "abs(1, 2)", nil, nil, nil); err == nil {
		t.Error("wrong arity should error")
	}
}

func TestConversions(t *testing.T) {
	cases := map[string]value.Value{
		"toInteger('42')":    value.Int(42),
		"toInteger('4.9')":   value.Int(4),
		"toInteger(3.7)":     value.Int(3),
		"toInteger('nope')":  value.NullValue,
		"toFloat('1.5')":     value.Float(1.5),
		"toFloat(2)":         value.Float(2),
		"toFloat('x')":       value.NullValue,
		"toBoolean('true')":  value.Bool(true),
		"toBoolean('False')": value.Bool(false),
		"toBoolean('x')":     value.NullValue,
		"toString(42)":       value.String("42"),
		"toString(1.5)":      value.String("1.5"),
		"toString(true)":     value.String("true"),
		"toString('s')":      value.String("s"),
		"toString(null)":     value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestListFuncs(t *testing.T) {
	cases := map[string]value.Value{
		"size([1,2,3])":        value.Int(3),
		"size('abc')":          value.Int(3),
		"size({a:1})":          value.Int(1),
		"length([1,2])":        value.Int(2),
		"head([1,2])":          value.Int(1),
		"head([])":             value.NullValue,
		"last([1,2])":          value.Int(2),
		"last([])":             value.NullValue,
		"tail([1,2,3])":        value.List{value.Int(2), value.Int(3)},
		"tail([])":             value.List{},
		"reverse([1,2])":       value.List{value.Int(2), value.Int(1)},
		"reverse('ab')":        value.String("ba"),
		"range(1,3)":           value.List{value.Int(1), value.Int(2), value.Int(3)},
		"range(3,1,-1)":        value.List{value.Int(3), value.Int(2), value.Int(1)},
		"range(1,10,4)":        value.List{value.Int(1), value.Int(5), value.Int(9)},
		"coalesce(null, 2, 3)": value.Int(2),
		"coalesce(null, null)": value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if _, err := evalStr(t, "range(1, 5, 0)", nil, nil, nil); err == nil {
		t.Error("zero step should error")
	}
}

func TestStringFuncs(t *testing.T) {
	cases := map[string]value.Value{
		"toUpper('ab')":            value.String("AB"),
		"toLower('AB')":            value.String("ab"),
		"trim('  x ')":             value.String("x"),
		"lTrim('  x')":             value.String("x"),
		"rTrim('x  ')":             value.String("x"),
		"replace('aaa','a','b')":   value.String("bbb"),
		"split('a,b', ',')":        value.List{value.String("a"), value.String("b")},
		"left('abcdef', 2)":        value.String("ab"),
		"right('abcdef', 2)":       value.String("ef"),
		"left('ab', 10)":           value.String("ab"),
		"substring('hello', 1)":    value.String("ello"),
		"substring('hello', 1, 3)": value.String("ell"),
		"substring('hello', 99)":   value.String(""),
		"toUpper(null)":            value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, nil, nil)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if _, err := evalStr(t, "left('ab', -1)", nil, nil, nil); err == nil {
		t.Error("negative length should error")
	}
}

func TestGraphFuncs(t *testing.T) {
	g := graph.New()
	a := g.CreateNode([]string{"User", "Admin"}, value.Map{"name": value.String("bob")})
	b := g.CreateNode([]string{"Product"}, nil)
	r, _ := g.CreateRel(a.ID, b.ID, "ORDERED", value.Map{"qty": value.Int(2)})
	env := Env{
		"a": value.Node{ID: int64(a.ID)},
		"b": value.Node{ID: int64(b.ID)},
		"r": value.Rel{ID: int64(r.ID)},
		"p": value.Path{Nodes: []int64{int64(a.ID), int64(b.ID)}, Rels: []int64{int64(r.ID)}},
	}
	cases := map[string]value.Value{
		"id(a)":           value.Int(int64(a.ID)),
		"id(r)":           value.Int(int64(r.ID)),
		"labels(a)":       value.List{value.String("Admin"), value.String("User")},
		"type(r)":         value.String("ORDERED"),
		"properties(a)":   value.Map{"name": value.String("bob")},
		"keys(a)":         value.List{value.String("name")},
		"keys({x:1})":     value.List{value.String("x")},
		"startNode(r)":    value.Node{ID: int64(a.ID)},
		"endNode(r)":      value.Node{ID: int64(b.ID)},
		"length(p)":       value.Int(1),
		"exists(a.name)":  value.Bool(true),
		"exists(a.other)": value.Bool(false),
		"id(null)":        value.NullValue,
	}
	for src, want := range cases {
		got := mustEval(t, src, g, env)
		if !value.Equivalent(got, want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	// nodes()/relationships() over a path.
	nodes := mustEval(t, "nodes(p)", g, env).(value.List)
	if len(nodes) != 2 {
		t.Errorf("nodes(p) = %v", nodes)
	}
	rels := mustEval(t, "relationships(p)", g, env).(value.List)
	if len(rels) != 1 {
		t.Errorf("relationships(p) = %v", rels)
	}
	if _, err := evalStr(t, "labels(1)", g, env, nil); err == nil {
		t.Error("labels of int should error")
	}
	if _, err := evalStr(t, "unknownfn(1)", g, env, nil); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := evalStr(t, "count(x)", g, env, nil); err == nil {
		t.Error("aggregate outside projection should error")
	}
}

func TestFunctionsList(t *testing.T) {
	fns := Functions()
	if len(fns) < 40 {
		t.Errorf("expected a rich function library, got %d", len(fns))
	}
	seen := map[string]bool{}
	for _, f := range fns {
		if seen[f] {
			t.Errorf("duplicate function %s", f)
		}
		seen[f] = true
	}
	for _, want := range []string{"exists", "coalesce", "id", "size"} {
		if !seen[want] {
			t.Errorf("missing function %s", want)
		}
	}
}
