package expr

import (
	"repro/internal/ast"
)

// Fold returns e with closed, pure, deterministic subtrees replaced by
// plan-time constants (ast.Const), recursing into the children of any
// node that cannot fold whole. The result is semantically
// indistinguishable from e:
//
//   - Only subtrees with no free variables, no parameters, no aggregate
//     calls, and no function whose registry entry is missing or not
//     Pure+Deterministic are candidates, so a folded subtree's value
//     cannot depend on the row, the parameters, the clock or randomness.
//   - A candidate is folded only when its evaluation SUCCEEDS; a subtree
//     whose evaluation errors (1/0, type errors, wrong arity) is left
//     intact so the error still surfaces at run time, on exactly the
//     rows that reach it — folding can neither introduce nor hide
//     errors, and short-circuit (AND/OR) and branch (CASE) semantics
//     are preserved because an erroring operand stays unfolded while a
//     successfully folded one yields the same value the runtime would.
//
// Folding happens at plan build time, after parameters are bound but
// without reading them (parameters never fold), and it never rewrites
// pattern nodes — callers that fold a clause keep the Pattern pointers
// intact so the match plan cache keys (AST identity) are unchanged.
//
// The input tree is never mutated: rewritten nodes are fresh copies, so
// folding composes with the engine-wide statement cache sharing one AST
// across sessions.
func Fold(e ast.Expr, ev *Evaluator) ast.Expr {
	out, _ := foldExpr(e, ev)
	return out
}

func foldExpr(e ast.Expr, ev *Evaluator) (ast.Expr, bool) {
	if e == nil {
		return nil, false
	}
	switch e.(type) {
	case *ast.Literal, *ast.Const, *ast.Variable, *ast.Parameter:
		// Leaves: literals evaluate in O(1) already, variables and
		// parameters are row/binding dependent.
		return e, false
	}
	if foldable(e) {
		if v, err := ev.Eval(e, nil); err == nil {
			return &ast.Const{Val: v}, true
		}
	}
	return foldChildren(e, ev)
}

// foldable reports whether e is a closed candidate: evaluating it at
// plan time is guaranteed to observe nothing execution would not.
func foldable(e ast.Expr) bool {
	if len(ast.Variables(e)) > 0 {
		return false
	}
	ok := true
	ast.Walk(e, func(x ast.Expr) bool {
		switch f := x.(type) {
		case *ast.Parameter:
			ok = false
		case *ast.FuncCall:
			if f.Distinct || f.Star {
				ok = false
				break
			}
			// Aggregates and unknown functions have no registry entry
			// and block folding; so do impure or nondeterministic ones.
			def := LookupFunc(f.Name)
			if def == nil || !def.Pure || !def.Deterministic {
				ok = false
			}
		}
		return ok
	})
	return ok
}

func foldList(es []ast.Expr, ev *Evaluator) ([]ast.Expr, bool) {
	changed := false
	out := es
	for i, e := range es {
		f, ch := foldExpr(e, ev)
		if ch && !changed {
			out = append([]ast.Expr(nil), es...)
			changed = true
		}
		if changed {
			out[i] = f
		}
	}
	return out, changed
}

// foldChildren folds e's subexpressions, returning a fresh copy of e
// when any of them changed and e itself otherwise.
func foldChildren(e ast.Expr, ev *Evaluator) (ast.Expr, bool) {
	switch x := e.(type) {
	case *ast.PropAccess:
		if inner, ch := foldExpr(x.Expr, ev); ch {
			return &ast.PropAccess{Expr: inner, Key: x.Key}, true
		}
	case *ast.Index:
		base, ch1 := foldExpr(x.Expr, ev)
		idx, ch2 := foldExpr(x.Index, ev)
		if ch1 || ch2 {
			return &ast.Index{Expr: base, Index: idx}, true
		}
	case *ast.Slice:
		base, ch1 := foldExpr(x.Expr, ev)
		from, ch2 := foldExpr(x.From, ev)
		to, ch3 := foldExpr(x.To, ev)
		if ch1 || ch2 || ch3 {
			return &ast.Slice{Expr: base, From: from, To: to}, true
		}
	case *ast.UnaryOp:
		if inner, ch := foldExpr(x.Expr, ev); ch {
			return &ast.UnaryOp{Op: x.Op, Expr: inner}, true
		}
	case *ast.BinaryOp:
		l, ch1 := foldExpr(x.Left, ev)
		r, ch2 := foldExpr(x.Right, ev)
		if ch1 || ch2 {
			return &ast.BinaryOp{Op: x.Op, Left: l, Right: r}, true
		}
	case *ast.IsNull:
		if inner, ch := foldExpr(x.Expr, ev); ch {
			return &ast.IsNull{Expr: inner, Not: x.Not}, true
		}
	case *ast.ListLit:
		if elems, ch := foldList(x.Elems, ev); ch {
			return &ast.ListLit{Elems: elems}, true
		}
	case *ast.MapLit:
		if vals, ch := foldList(x.Vals, ev); ch {
			return &ast.MapLit{Keys: x.Keys, Vals: vals}, true
		}
	case *ast.FuncCall:
		// Aggregate calls are intentionally rebuilt-free: the caller
		// (internal/plan) skips items containing aggregates because the
		// aggregation machinery keys results by FuncCall node identity.
		if args, ch := foldList(x.Args, ev); ch {
			return &ast.FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star, Args: args}, true
		}
	case *ast.CaseExpr:
		test, ch1 := foldExpr(x.Test, ev)
		whens, ch2 := foldList(x.Whens, ev)
		thens, ch3 := foldList(x.Thens, ev)
		els, ch4 := foldExpr(x.Else, ev)
		if ch1 || ch2 || ch3 || ch4 {
			return &ast.CaseExpr{Test: test, Whens: whens, Thens: thens, Else: els}, true
		}
	case *ast.ListComprehension:
		// Only the source list may fold: the filter and projection
		// reference the binder variable (if they did not, the whole
		// comprehension would usually be closed and fold above).
		lst, ch1 := foldExpr(x.List, ev)
		where, ch2 := foldExpr(x.Where, ev)
		proj, ch3 := foldExpr(x.Proj, ev)
		if ch1 || ch2 || ch3 {
			return &ast.ListComprehension{Var: x.Var, List: lst, Where: where, Proj: proj}, true
		}
	case *ast.Quantifier:
		lst, ch1 := foldExpr(x.List, ev)
		where, ch2 := foldExpr(x.Where, ev)
		if ch1 || ch2 {
			return &ast.Quantifier{Kind: x.Kind, Var: x.Var, List: lst, Where: where}, true
		}
	case *ast.Reduce:
		init, ch1 := foldExpr(x.Init, ev)
		lst, ch2 := foldExpr(x.List, ev)
		body, ch3 := foldExpr(x.Expr, ev)
		if ch1 || ch2 || ch3 {
			return &ast.Reduce{Acc: x.Acc, Init: init, Var: x.Var, List: lst, Expr: body}, true
		}
	}
	return e, false
}
