package expr

import (
	"math"
	"testing"

	"repro/internal/value"
)

func feed(t *testing.T, name string, distinct, star bool, vals ...value.Value) value.Value {
	t.Helper()
	agg, err := NewAggregator(name, distinct, star)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := agg.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return agg.Result()
}

func TestCount(t *testing.T) {
	if got := feed(t, "count", false, false, value.Int(1), value.NullValue, value.Int(2)); got != value.Int(2) {
		t.Errorf("count skips nulls: %v", got)
	}
	if got := feed(t, "count", false, true, value.Int(1), value.NullValue); got != value.Int(2) {
		t.Errorf("count(*) includes nulls: %v", got)
	}
	if got := feed(t, "count", true, false, value.Int(1), value.Int(1), value.Float(1.0), value.Int(2)); got != value.Int(2) {
		t.Errorf("count distinct: %v", got)
	}
}

func TestSumAvg(t *testing.T) {
	if got := feed(t, "sum", false, false, value.Int(1), value.Int(2), value.NullValue); got != value.Int(3) {
		t.Errorf("sum ints: %v", got)
	}
	if got := feed(t, "sum", false, false, value.Int(1), value.Float(0.5)); got != value.Float(1.5) {
		t.Errorf("sum mixed: %v", got)
	}
	if got := feed(t, "sum", false, false); got != value.Int(0) {
		t.Errorf("empty sum: %v", got)
	}
	if got := feed(t, "avg", false, false, value.Int(1), value.Int(2)); got != value.Float(1.5) {
		t.Errorf("avg: %v", got)
	}
	if got := feed(t, "avg", false, false); !value.IsNull(got) {
		t.Errorf("empty avg: %v", got)
	}
	agg, _ := NewAggregator("sum", false, false)
	if err := agg.Add(value.String("x")); err == nil {
		t.Error("sum of string should error")
	}
	agg2, _ := NewAggregator("avg", false, false)
	if err := agg2.Add(value.Bool(true)); err == nil {
		t.Error("avg of bool should error")
	}
}

func TestMinMax(t *testing.T) {
	if got := feed(t, "min", false, false, value.Int(3), value.Int(1), value.NullValue, value.Int(2)); got != value.Int(1) {
		t.Errorf("min: %v", got)
	}
	if got := feed(t, "max", false, false, value.Int(3), value.Int(1)); got != value.Int(3) {
		t.Errorf("max: %v", got)
	}
	if got := feed(t, "min", false, false, value.NullValue); !value.IsNull(got) {
		t.Errorf("min of nulls: %v", got)
	}
	// min/max work across orderable types.
	if got := feed(t, "min", false, false, value.String("b"), value.String("a")); got != value.String("a") {
		t.Errorf("min strings: %v", got)
	}
}

func TestCollect(t *testing.T) {
	got := feed(t, "collect", false, false, value.Int(1), value.NullValue, value.Int(2))
	want := value.List{value.Int(1), value.Int(2)}
	if !value.Equivalent(got, want) {
		t.Errorf("collect: %v", got)
	}
	if got := feed(t, "collect", false, false); !value.Equivalent(got, value.List{}) {
		t.Errorf("empty collect: %v", got)
	}
	got = feed(t, "collect", true, false, value.Int(1), value.Int(1), value.Int(2))
	if !value.Equivalent(got, value.List{value.Int(1), value.Int(2)}) {
		t.Errorf("collect distinct: %v", got)
	}
}

func TestStDev(t *testing.T) {
	got := feed(t, "stdev", false, false, value.Int(1), value.Int(2), value.Int(3))
	if math.Abs(float64(got.(value.Float))-1.0) > 1e-12 {
		t.Errorf("sample stdev: %v", got)
	}
	got = feed(t, "stdevp", false, false, value.Int(1), value.Int(2), value.Int(3))
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(float64(got.(value.Float))-want) > 1e-12 {
		t.Errorf("population stdev: %v, want %v", got, want)
	}
	if got := feed(t, "stdev", false, false, value.Int(1)); got != value.Float(0) {
		t.Errorf("stdev of singleton: %v", got)
	}
}

func TestUnknownAggregate(t *testing.T) {
	if _, err := NewAggregator("frob", false, false); err == nil {
		t.Error("unknown aggregate should error")
	}
}
