// Package expr evaluates Cypher expressions over a property graph and a
// driving-table record, implementing the semantics of expressions
// [[e]]_{G,u} from the paper's formal framework (Section 8.1): an
// expression is evaluated against a graph G and an assignment u of values
// to its free variables.
//
// Comparison and boolean operators follow SQL-style ternary logic; see
// package value for the three comparison regimes.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/value"
)

// Env is an assignment of values to variable names (a driving-table
// record). Binder-introduced variables (comprehensions, quantifiers,
// reduce) live in scope frames during evaluation and never appear here.
type Env map[string]value.Value

// With returns a copy of the environment with one extra binding.
func (e Env) With(name string, v value.Value) Env {
	out := make(Env, len(e)+1)
	for k, val := range e {
		out[k] = val
	}
	out[name] = v
	return out
}

// Evaluator evaluates expressions against a graph and parameters.
type Evaluator struct {
	Graph  *graph.Graph
	Params map[string]value.Value

	// AggResults, when non-nil, maps aggregate FuncCall nodes to their
	// precomputed per-group results; the projection machinery in the
	// engine fills it before evaluating a grouped return item.
	AggResults map[ast.Expr]value.Value

	// Budget, when non-nil, caps the number of expression nodes this
	// evaluator may visit over its lifetime; once exhausted, every
	// evaluation errors. The engine leaves it nil (unlimited) — it
	// exists so adversarial harnesses (fuzzers) can bound runaway
	// expressions like nested comprehensions over huge ranges.
	Budget *int64
}

// Eval evaluates e under env.
func (ev *Evaluator) Eval(e ast.Expr, env Env) (value.Value, error) {
	return ev.eval(e, scope{env: env})
}

func (ev *Evaluator) eval(e ast.Expr, sc scope) (value.Value, error) {
	if ev.Budget != nil {
		if *ev.Budget <= 0 {
			return nil, fmt.Errorf("expression evaluation budget exhausted")
		}
		*ev.Budget--
	}
	switch x := e.(type) {
	case *ast.Literal:
		return literalValue(x)
	case *ast.Const:
		return x.Val, nil
	case *ast.Variable:
		v, ok := sc.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("variable `%s` not defined", x.Name)
		}
		return v, nil
	case *ast.Parameter:
		v, ok := ev.Params[x.Name]
		if !ok {
			return nil, fmt.Errorf("parameter $%s not supplied", x.Name)
		}
		return v, nil
	case *ast.PropAccess:
		base, err := ev.eval(x.Expr, sc)
		if err != nil {
			return nil, err
		}
		return ev.propValue(base, x.Key)
	case *ast.Index:
		return ev.evalIndex(x, sc)
	case *ast.Slice:
		return ev.evalSlice(x, sc)
	case *ast.UnaryOp:
		return ev.evalUnary(x, sc)
	case *ast.BinaryOp:
		return ev.evalBinary(x, sc)
	case *ast.IsNull:
		v, err := ev.eval(x.Expr, sc)
		if err != nil {
			return nil, err
		}
		isNull := value.IsNull(v)
		if x.Not {
			return value.Bool(!isNull), nil
		}
		return value.Bool(isNull), nil
	case *ast.ListLit:
		out := make(value.List, len(x.Elems))
		for i, el := range x.Elems {
			v, err := ev.eval(el, sc)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case *ast.MapLit:
		out := make(value.Map, len(x.Keys))
		for i, k := range x.Keys {
			v, err := ev.eval(x.Vals[i], sc)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case *ast.FuncCall:
		if ev.AggResults != nil && ast.AggregateFuncs[x.Name] {
			if v, ok := ev.AggResults[x]; ok {
				return v, nil
			}
			return nil, fmt.Errorf("aggregate %s() used outside an aggregating projection", x.Name)
		}
		return ev.evalFunc(x, sc)
	case *ast.CaseExpr:
		return ev.evalCase(x, sc)
	case *ast.ListComprehension:
		return ev.evalListComp(x, sc)
	case *ast.Quantifier:
		return ev.evalQuantifier(x, sc)
	case *ast.Reduce:
		return ev.evalReduce(x, sc)
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// EvalBool evaluates a predicate expression to a truth value. Non-boolean
// non-null results are an error.
func (ev *Evaluator) EvalBool(e ast.Expr, env Env) (value.Tri, error) {
	return ev.evalBool(e, scope{env: env})
}

func (ev *Evaluator) evalBool(e ast.Expr, sc scope) (value.Tri, error) {
	v, err := ev.eval(e, sc)
	if err != nil {
		return value.Unknown, err
	}
	t, ok := value.TriOf(v)
	if !ok {
		return value.Unknown, fmt.Errorf("predicate evaluated to %s, expected Boolean", v.Kind())
	}
	return t, nil
}

// EvalPropMap evaluates a node/relationship property-map expression
// (a map literal or parameter) to a value.Map. A nil expression yields an
// empty map.
func (ev *Evaluator) EvalPropMap(e ast.Expr, env Env) (value.Map, error) {
	if e == nil {
		return value.Map{}, nil
	}
	v, err := ev.Eval(e, env)
	if err != nil {
		return nil, err
	}
	m, ok := value.AsMap(v)
	if !ok {
		return nil, fmt.Errorf("properties must be a map, got %s", v.Kind())
	}
	return m, nil
}

func literalValue(l *ast.Literal) (value.Value, error) {
	switch v := l.Value.(type) {
	case nil:
		return value.NullValue, nil
	case bool:
		return value.Bool(v), nil
	case int64:
		return value.Int(v), nil
	case float64:
		return value.Float(v), nil
	case string:
		return value.String(v), nil
	default:
		return nil, fmt.Errorf("unsupported literal %T", l.Value)
	}
}

// propValue resolves property access on nodes, relationships and maps.
// Access on a missing (deleted) entity yields null: this is the lenient
// behaviour the legacy engine relies on for Section 4.2, and the revised
// engine nulls deleted references before expressions can observe them.
func (ev *Evaluator) propValue(base value.Value, key string) (value.Value, error) {
	switch b := base.(type) {
	case value.Null:
		return value.NullValue, nil
	case value.Node:
		n := ev.Graph.Node(graph.NodeID(b.ID))
		if n == nil {
			return value.NullValue, nil
		}
		if v, ok := n.Props[key]; ok {
			return v, nil
		}
		return value.NullValue, nil
	case value.Rel:
		r := ev.Graph.Rel(graph.RelID(b.ID))
		if r == nil {
			return value.NullValue, nil
		}
		if v, ok := r.Props[key]; ok {
			return v, nil
		}
		return value.NullValue, nil
	case value.Map:
		if v, ok := b[key]; ok {
			return v, nil
		}
		return value.NullValue, nil
	default:
		return nil, fmt.Errorf("type error: cannot access property %q on %s", key, base.Kind())
	}
}

func (ev *Evaluator) evalIndex(x *ast.Index, sc scope) (value.Value, error) {
	base, err := ev.eval(x.Expr, sc)
	if err != nil {
		return nil, err
	}
	idx, err := ev.eval(x.Index, sc)
	if err != nil {
		return nil, err
	}
	if value.IsNull(base) || value.IsNull(idx) {
		return value.NullValue, nil
	}
	switch b := base.(type) {
	case value.List:
		i, ok := value.AsInt(idx)
		if !ok {
			return nil, fmt.Errorf("list index must be an integer, got %s", idx.Kind())
		}
		if i < 0 {
			i += int64(len(b))
		}
		if i < 0 || i >= int64(len(b)) {
			return value.NullValue, nil
		}
		return b[i], nil
	case value.Map:
		k, ok := value.AsString(idx)
		if !ok {
			return nil, fmt.Errorf("map key must be a string, got %s", idx.Kind())
		}
		if v, ok := b[k]; ok {
			return v, nil
		}
		return value.NullValue, nil
	case value.Node, value.Rel:
		k, ok := value.AsString(idx)
		if !ok {
			return nil, fmt.Errorf("property key must be a string, got %s", idx.Kind())
		}
		return ev.propValue(base, k)
	default:
		return nil, fmt.Errorf("type error: cannot index %s", base.Kind())
	}
}

func (ev *Evaluator) evalSlice(x *ast.Slice, sc scope) (value.Value, error) {
	base, err := ev.eval(x.Expr, sc)
	if err != nil {
		return nil, err
	}
	if value.IsNull(base) {
		return value.NullValue, nil
	}
	lst, ok := value.AsList(base)
	if !ok {
		return nil, fmt.Errorf("type error: cannot slice %s", base.Kind())
	}
	from, to := int64(0), int64(len(lst))
	if x.From != nil {
		v, err := ev.eval(x.From, sc)
		if err != nil {
			return nil, err
		}
		if value.IsNull(v) {
			return value.NullValue, nil
		}
		if from, ok = value.AsInt(v); !ok {
			return nil, fmt.Errorf("slice bound must be an integer")
		}
	}
	if x.To != nil {
		v, err := ev.eval(x.To, sc)
		if err != nil {
			return nil, err
		}
		if value.IsNull(v) {
			return value.NullValue, nil
		}
		if to, ok = value.AsInt(v); !ok {
			return nil, fmt.Errorf("slice bound must be an integer")
		}
	}
	n := int64(len(lst))
	if from < 0 {
		from += n
	}
	if to < 0 {
		to += n
	}
	if from < 0 {
		from = 0
	}
	if to > n {
		to = n
	}
	if from >= to {
		return value.List{}, nil
	}
	out := make(value.List, to-from)
	copy(out, lst[from:to])
	return out, nil
}

func (ev *Evaluator) evalUnary(x *ast.UnaryOp, sc scope) (value.Value, error) {
	switch x.Op {
	case ast.OpNot:
		t, err := ev.evalBool(x.Expr, sc)
		if err != nil {
			return nil, err
		}
		return t.Not().Value(), nil
	case ast.OpNeg:
		v, err := ev.eval(x.Expr, sc)
		if err != nil {
			return nil, err
		}
		return value.Neg(v)
	default: // OpPos
		v, err := ev.eval(x.Expr, sc)
		if err != nil {
			return nil, err
		}
		if !value.IsNull(v) && !value.IsNumber(v) {
			return nil, fmt.Errorf("type error: unary + on %s", v.Kind())
		}
		return v, nil
	}
}

func (ev *Evaluator) evalBinary(x *ast.BinaryOp, sc scope) (value.Value, error) {
	switch x.Op {
	case ast.OpAnd, ast.OpOr, ast.OpXor:
		return ev.evalLogic(x, sc)
	}
	l, err := ev.eval(x.Left, sc)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.Right, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpEq:
		return value.Equal(l, r).Value(), nil
	case ast.OpNeq:
		return value.Equal(l, r).Not().Value(), nil
	case ast.OpLt:
		return value.Less(l, r).Value(), nil
	case ast.OpGt:
		return value.Less(r, l).Value(), nil
	case ast.OpLeq:
		return value.Less(r, l).Not().Value(), nil
	case ast.OpGeq:
		return value.Less(l, r).Not().Value(), nil
	case ast.OpAdd:
		return value.Add(l, r)
	case ast.OpSub:
		return value.Sub(l, r)
	case ast.OpMul:
		return value.Mul(l, r)
	case ast.OpDiv:
		return value.Div(l, r)
	case ast.OpMod:
		return value.Mod(l, r)
	case ast.OpPow:
		return value.Pow(l, r)
	case ast.OpIn:
		return evalIn(l, r)
	case ast.OpStartsWith, ast.OpEndsWith, ast.OpContains:
		return evalStringPredicate(x.Op, l, r)
	default:
		return nil, fmt.Errorf("unsupported binary operator")
	}
}

// evalLogic evaluates AND/OR/XOR with Kleene semantics, short-circuiting
// when the left operand already determines the result.
func (ev *Evaluator) evalLogic(x *ast.BinaryOp, sc scope) (value.Value, error) {
	lt, err := ev.evalBool(x.Left, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpAnd:
		if lt == value.False {
			return value.Bool(false), nil
		}
	case ast.OpOr:
		if lt == value.True {
			return value.Bool(true), nil
		}
	}
	rt, err := ev.evalBool(x.Right, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpAnd:
		return lt.And(rt).Value(), nil
	case ast.OpOr:
		return lt.Or(rt).Value(), nil
	default:
		return lt.Xor(rt).Value(), nil
	}
}

// evalIn implements ternary list membership: true if some element equals
// the needle, null if the needle is null or some comparison is unknown,
// false otherwise.
func evalIn(needle, hay value.Value) (value.Value, error) {
	if value.IsNull(hay) {
		return value.NullValue, nil
	}
	lst, ok := value.AsList(hay)
	if !ok {
		return nil, fmt.Errorf("type error: IN requires a list, got %s", hay.Kind())
	}
	result := value.False
	for _, el := range lst {
		switch value.Equal(needle, el) {
		case value.True:
			return value.Bool(true), nil
		case value.Unknown:
			result = value.Unknown
		}
	}
	if value.IsNull(needle) && len(lst) > 0 {
		result = value.Unknown
	}
	return result.Value(), nil
}

func evalStringPredicate(op ast.BinaryOpKind, l, r value.Value) (value.Value, error) {
	if value.IsNull(l) || value.IsNull(r) {
		return value.NullValue, nil
	}
	ls, lok := value.AsString(l)
	rs, rok := value.AsString(r)
	if !lok || !rok {
		return nil, fmt.Errorf("type error: string predicate on %s and %s", l.Kind(), r.Kind())
	}
	switch op {
	case ast.OpStartsWith:
		return value.Bool(strings.HasPrefix(ls, rs)), nil
	case ast.OpEndsWith:
		return value.Bool(strings.HasSuffix(ls, rs)), nil
	default:
		return value.Bool(strings.Contains(ls, rs)), nil
	}
}

func (ev *Evaluator) evalCase(x *ast.CaseExpr, sc scope) (value.Value, error) {
	if x.Test != nil {
		test, err := ev.eval(x.Test, sc)
		if err != nil {
			return nil, err
		}
		for i, w := range x.Whens {
			wv, err := ev.eval(w, sc)
			if err != nil {
				return nil, err
			}
			if value.Equal(test, wv) == value.True {
				return ev.eval(x.Thens[i], sc)
			}
		}
	} else {
		for i, w := range x.Whens {
			t, err := ev.evalBool(w, sc)
			if err != nil {
				return nil, err
			}
			if t == value.True {
				return ev.eval(x.Thens[i], sc)
			}
		}
	}
	if x.Else != nil {
		return ev.eval(x.Else, sc)
	}
	return value.NullValue, nil
}

func (ev *Evaluator) evalListComp(x *ast.ListComprehension, sc scope) (value.Value, error) {
	src, err := ev.eval(x.List, sc)
	if err != nil {
		return nil, err
	}
	if value.IsNull(src) {
		return value.NullValue, nil
	}
	lst, ok := value.AsList(src)
	if !ok {
		return nil, fmt.Errorf("type error: comprehension over %s", src.Kind())
	}
	out := make(value.List, 0, len(lst))
	for _, el := range lst {
		inner := sc.bind(x.Var, el)
		if x.Where != nil {
			t, err := ev.evalBool(x.Where, inner)
			if err != nil {
				return nil, err
			}
			if t != value.True {
				continue
			}
		}
		if x.Proj != nil {
			v, err := ev.eval(x.Proj, inner)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		} else {
			out = append(out, el)
		}
	}
	return out, nil
}

func (ev *Evaluator) evalQuantifier(x *ast.Quantifier, sc scope) (value.Value, error) {
	src, err := ev.eval(x.List, sc)
	if err != nil {
		return nil, err
	}
	if value.IsNull(src) {
		return value.NullValue, nil
	}
	lst, ok := value.AsList(src)
	if !ok {
		return nil, fmt.Errorf("type error: quantifier over %s", src.Kind())
	}
	trues, unknowns := 0, 0
	for _, el := range lst {
		t, err := ev.evalBool(x.Where, sc.bind(x.Var, el))
		if err != nil {
			return nil, err
		}
		switch t {
		case value.True:
			trues++
		case value.Unknown:
			unknowns++
		}
	}
	n := len(lst)
	switch x.Kind {
	case ast.QuantAll:
		if trues == n {
			return value.Bool(true), nil
		}
		if trues+unknowns == n {
			return value.NullValue, nil
		}
		return value.Bool(false), nil
	case ast.QuantAny:
		if trues > 0 {
			return value.Bool(true), nil
		}
		if unknowns > 0 {
			return value.NullValue, nil
		}
		return value.Bool(false), nil
	case ast.QuantNone:
		if trues > 0 {
			return value.Bool(false), nil
		}
		if unknowns > 0 {
			return value.NullValue, nil
		}
		return value.Bool(true), nil
	default: // QuantSingle
		if unknowns > 0 {
			return value.NullValue, nil
		}
		return value.Bool(trues == 1), nil
	}
}

func (ev *Evaluator) evalReduce(x *ast.Reduce, sc scope) (value.Value, error) {
	acc, err := ev.eval(x.Init, sc)
	if err != nil {
		return nil, err
	}
	src, err := ev.eval(x.List, sc)
	if err != nil {
		return nil, err
	}
	if value.IsNull(src) {
		return value.NullValue, nil
	}
	lst, ok := value.AsList(src)
	if !ok {
		return nil, fmt.Errorf("type error: reduce over %s", src.Kind())
	}
	for _, el := range lst {
		// The element binding is innermost: when the accumulator and
		// element share a name, the element shadows (matching the
		// map-based semantics this replaced).
		inner := sc.bind(x.Acc, acc).bind(x.Var, el)
		acc, err = ev.eval(x.Expr, inner)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
