package expr

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/value"
)

func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func foldStr(t *testing.T, src string) ast.Expr {
	t.Helper()
	ev := &Evaluator{Graph: graph.New()}
	return Fold(parseExpr(t, src), ev)
}

func TestFoldCollapsesClosedPureSubtrees(t *testing.T) {
	cases := map[string]string{
		"10 + 20":                       "30",
		"n.age > 10 + 20":               "(n.age > 30)",
		"size('ab') + size([1, 2, 3])":  "5",
		"toUpper('a' + 'b')":            "'AB'",
		"[1, 2][0] + 1":                 "2",
		"CASE WHEN true THEN 1 ELSE 2 END":          "1",
		"reduce(s = 0, x IN [1, 2, 3] | s + x)":     "6",
		"[x IN range(1, 4) WHERE x % 2 = 0 | x * x]": "[4, 16]",
		"exists(null) OR n.flag":                    "(false OR n.flag)",
		"n.name + ('a' + 'b')":                      "(n.name + 'ab')",
	}
	for src, want := range cases {
		got := foldStr(t, src).String()
		if got != want {
			t.Errorf("Fold(%q) prints %q, want %q", src, got, want)
		}
	}
}

func TestFoldLeavesOpenOrUnsafeSubtreesAlone(t *testing.T) {
	// Variables, parameters, nondeterministic calls, graph readers and
	// erroring subtrees must survive folding verbatim.
	for _, src := range []string{
		"n.age > $min",        // parameter
		"x + 1",               // free variable
		"rand() < 0.5",        // nondeterministic
		"timestamp() - 1",     // nondeterministic
		"1 / 0",               // errors: left intact so the error surfaces at run time
		"toUpper(5) = 'x'",    // errors inside a comparison
		"labels(n)",           // graph reader on a row variable
	} {
		e := parseExpr(t, src)
		folded := Fold(e, &Evaluator{Graph: graph.New()})
		if folded.String() != e.String() {
			t.Errorf("Fold(%q) = %q, want unchanged", src, folded.String())
		}
	}
}

// TestFoldErrorPreservation is the behavior-preservation core: an
// expression that errors evaluates to the same error before and after
// folding, and one that succeeds evaluates to the same value.
func TestFoldErrorPreservation(t *testing.T) {
	ev := &Evaluator{Graph: graph.New()}
	for _, src := range []string{
		"1 / 0",
		"1 + 2 * 3",
		"toUpper(5)",
		"abs('x')",
		"coalesce(1 / 0, 2)",
		"CASE WHEN 1 = 1 THEN 2 ELSE 1 / 0 END",
		"true OR 1 / 0 = 1",
	} {
		e := parseExpr(t, src)
		wantV, wantErr := ev.Eval(e, Env{})
		folded := Fold(e, ev)
		gotV, gotErr := ev.Eval(folded, Env{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: error changed across folding: %v vs %v", src, wantErr, gotErr)
			continue
		}
		if wantErr == nil && !value.Equivalent(wantV, gotV) {
			t.Errorf("%q: value changed across folding: %v vs %v", src, wantV, gotV)
		}
	}
}

func TestFoldReturnsSamePointerWhenNothingFolds(t *testing.T) {
	e := parseExpr(t, "n.age > $min")
	if folded := Fold(e, &Evaluator{Graph: graph.New()}); folded != e {
		t.Error("Fold should return the identical node when nothing changed")
	}
}

func TestFoldDoesNotMutateInput(t *testing.T) {
	e := parseExpr(t, "n.age > 10 + 20")
	before := e.String()
	folded := Fold(e, &Evaluator{Graph: graph.New()})
	if e.String() != before {
		t.Errorf("input tree mutated: %q -> %q", before, e.String())
	}
	if folded == e {
		t.Error("a folded tree must be a fresh copy, not the input")
	}
}

func TestFoldProducesConstNodes(t *testing.T) {
	folded := foldStr(t, "10 + 20")
	c, ok := folded.(*ast.Const)
	if !ok {
		t.Fatalf("Fold(10 + 20) = %T, want *ast.Const", folded)
	}
	if !value.Equivalent(c.Val, value.Int(30)) {
		t.Errorf("folded value = %v, want 30", c.Val)
	}
	// Leaves never fold: a bare literal stays a Literal.
	if _, ok := foldStr(t, "42").(*ast.Literal); !ok {
		t.Error("a bare literal should not be rewritten to a Const")
	}
}
