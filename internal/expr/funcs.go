package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/value"
)

// evalFunc dispatches non-aggregate function calls.
func (ev *Evaluator) evalFunc(f *ast.FuncCall, env Env) (value.Value, error) {
	if f.Name == "exists" {
		return ev.evalExists(f, env)
	}
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ev.Eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	fn, ok := scalarFuncs[f.Name]
	if !ok {
		if ast.AggregateFuncs[f.Name] {
			return nil, fmt.Errorf("aggregate %s() used outside an aggregating projection", f.Name)
		}
		return nil, fmt.Errorf("unknown function %s()", f.Name)
	}
	return fn(ev, args)
}

// evalExists implements exists(n.prop): true when the entity carries the
// property. exists() over other expressions reduces to IS NOT NULL.
func (ev *Evaluator) evalExists(f *ast.FuncCall, env Env) (value.Value, error) {
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("exists() expects 1 argument")
	}
	v, err := ev.Eval(f.Args[0], env)
	if err != nil {
		return nil, err
	}
	return value.Bool(!value.IsNull(v)), nil
}

type scalarFunc func(ev *Evaluator, args []value.Value) (value.Value, error)

func arity(name string, n int, f func(ev *Evaluator, args []value.Value) (value.Value, error)) scalarFunc {
	return func(ev *Evaluator, args []value.Value) (value.Value, error) {
		if len(args) != n {
			return nil, fmt.Errorf("%s() expects %d argument(s), got %d", name, n, len(args))
		}
		return f(ev, args)
	}
}

// nullIn wraps a function to propagate null from its first argument.
func nullIn(f scalarFunc) scalarFunc {
	return func(ev *Evaluator, args []value.Value) (value.Value, error) {
		if len(args) > 0 && value.IsNull(args[0]) {
			return value.NullValue, nil
		}
		return f(ev, args)
	}
}

func numArg(name string, v value.Value) (float64, error) {
	f, ok := value.AsFloat(v)
	if !ok {
		return 0, fmt.Errorf("%s() expects a number, got %s", name, v.Kind())
	}
	return f, nil
}

func strArg(name string, v value.Value) (string, error) {
	s, ok := value.AsString(v)
	if !ok {
		return "", fmt.Errorf("%s() expects a string, got %s", name, v.Kind())
	}
	return s, nil
}

func mathFunc(name string, f func(float64) float64) scalarFunc {
	return arity(name, 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
		x, err := numArg(name, args[0])
		if err != nil {
			return nil, err
		}
		return value.Float(f(x)), nil
	}))
}

var scalarFuncs map[string]scalarFunc

func init() {
	scalarFuncs = map[string]scalarFunc{
		"abs": arity("abs", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Int:
				if x < 0 {
					return -x, nil
				}
				return x, nil
			case value.Float:
				return value.Float(math.Abs(float64(x))), nil
			}
			return nil, fmt.Errorf("abs() expects a number, got %s", args[0].Kind())
		})),
		"sign": arity("sign", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			x, err := numArg("sign", args[0])
			if err != nil {
				return nil, err
			}
			switch {
			case x > 0:
				return value.Int(1), nil
			case x < 0:
				return value.Int(-1), nil
			default:
				return value.Int(0), nil
			}
		})),
		"ceil":  mathFunc("ceil", math.Ceil),
		"floor": mathFunc("floor", math.Floor),
		"round": mathFunc("round", math.Round),
		"sqrt":  mathFunc("sqrt", math.Sqrt),
		"exp":   mathFunc("exp", math.Exp),
		"log":   mathFunc("log", math.Log),
		"log10": mathFunc("log10", math.Log10),
		"sin":   mathFunc("sin", math.Sin),
		"cos":   mathFunc("cos", math.Cos),
		"tan":   mathFunc("tan", math.Tan),
		"asin":  mathFunc("asin", math.Asin),
		"acos":  mathFunc("acos", math.Acos),
		"atan":  mathFunc("atan", math.Atan),
		"pi": arity("pi", 0, func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return value.Float(math.Pi), nil
		}),

		"toint":     arity("toInt", 1, toIntegerFunc),
		"tointeger": arity("toInteger", 1, toIntegerFunc),
		"tofloat": arity("toFloat", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Int:
				return value.Float(float64(x)), nil
			case value.Float:
				return x, nil
			case value.String:
				f, err := strconv.ParseFloat(strings.TrimSpace(string(x)), 64)
				if err != nil {
					return value.NullValue, nil
				}
				return value.Float(f), nil
			}
			return nil, fmt.Errorf("toFloat() expects a number or string")
		})),
		"toboolean": arity("toBoolean", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Bool:
				return x, nil
			case value.String:
				switch strings.ToLower(strings.TrimSpace(string(x))) {
				case "true":
					return value.Bool(true), nil
				case "false":
					return value.Bool(false), nil
				}
				return value.NullValue, nil
			}
			return nil, fmt.Errorf("toBoolean() expects a boolean or string")
		})),
		"tostring": arity("toString", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.String:
				return x, nil
			case value.Int, value.Float, value.Bool:
				return value.String(strings.Trim(x.String(), "'")), nil
			}
			return nil, fmt.Errorf("toString() expects a scalar, got %s", args[0].Kind())
		})),

		"size": arity("size", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.List:
				return value.Int(int64(len(x))), nil
			case value.String:
				return value.Int(int64(len([]rune(string(x))))), nil
			case value.Map:
				return value.Int(int64(len(x))), nil
			}
			return nil, fmt.Errorf("size() expects a list, string or map, got %s", args[0].Kind())
		})),
		"length": arity("length", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Path:
				return value.Int(int64(x.Len())), nil
			case value.List:
				return value.Int(int64(len(x))), nil
			case value.String:
				return value.Int(int64(len([]rune(string(x))))), nil
			}
			return nil, fmt.Errorf("length() expects a path, list or string, got %s", args[0].Kind())
		})),
		"head": arity("head", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			lst, ok := value.AsList(args[0])
			if !ok {
				return nil, fmt.Errorf("head() expects a list")
			}
			if len(lst) == 0 {
				return value.NullValue, nil
			}
			return lst[0], nil
		})),
		"last": arity("last", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			lst, ok := value.AsList(args[0])
			if !ok {
				return nil, fmt.Errorf("last() expects a list")
			}
			if len(lst) == 0 {
				return value.NullValue, nil
			}
			return lst[len(lst)-1], nil
		})),
		"tail": arity("tail", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			lst, ok := value.AsList(args[0])
			if !ok {
				return nil, fmt.Errorf("tail() expects a list")
			}
			if len(lst) == 0 {
				return value.List{}, nil
			}
			out := make(value.List, len(lst)-1)
			copy(out, lst[1:])
			return out, nil
		})),
		"reverse": arity("reverse", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.List:
				out := make(value.List, len(x))
				for i, v := range x {
					out[len(x)-1-i] = v
				}
				return out, nil
			case value.String:
				rs := []rune(string(x))
				for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
					rs[i], rs[j] = rs[j], rs[i]
				}
				return value.String(rs), nil
			}
			return nil, fmt.Errorf("reverse() expects a list or string")
		})),
		"range": func(ev *Evaluator, args []value.Value) (value.Value, error) {
			if len(args) != 2 && len(args) != 3 {
				return nil, fmt.Errorf("range() expects 2 or 3 arguments")
			}
			var nums [3]int64
			nums[2] = 1
			for i, a := range args {
				n, ok := value.AsInt(a)
				if !ok {
					return nil, fmt.Errorf("range() expects integers")
				}
				nums[i] = n
			}
			start, end, step := nums[0], nums[1], nums[2]
			if step == 0 {
				return nil, fmt.Errorf("range() step must not be zero")
			}
			var out value.List
			if step > 0 {
				for v := start; v <= end; v += step {
					out = append(out, value.Int(v))
				}
			} else {
				for v := start; v >= end; v += step {
					out = append(out, value.Int(v))
				}
			}
			return out, nil
		},
		"coalesce": func(ev *Evaluator, args []value.Value) (value.Value, error) {
			for _, a := range args {
				if !value.IsNull(a) {
					return a, nil
				}
			}
			return value.NullValue, nil
		},
		"keys": arity("keys", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			m, err := ev.entityProps(args[0], "keys")
			if err != nil {
				return nil, err
			}
			out := make(value.List, 0, len(m))
			for _, k := range m.Keys() {
				out = append(out, value.String(k))
			}
			return out, nil
		})),
		"properties": arity("properties", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			return ev.entityProps(args[0], "properties")
		})),
		"id": arity("id", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			switch x := args[0].(type) {
			case value.Node:
				return value.Int(x.ID), nil
			case value.Rel:
				return value.Int(x.ID), nil
			}
			return nil, fmt.Errorf("id() expects a node or relationship, got %s", args[0].Kind())
		})),
		"labels": arity("labels", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			n, ok := args[0].(value.Node)
			if !ok {
				return nil, fmt.Errorf("labels() expects a node, got %s", args[0].Kind())
			}
			gn := ev.Graph.Node(graph.NodeID(n.ID))
			if gn == nil {
				return value.NullValue, nil
			}
			ls := gn.SortedLabels()
			out := make(value.List, len(ls))
			for i, l := range ls {
				out[i] = value.String(l)
			}
			return out, nil
		})),
		"type": arity("type", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			r, ok := args[0].(value.Rel)
			if !ok {
				return nil, fmt.Errorf("type() expects a relationship, got %s", args[0].Kind())
			}
			gr := ev.Graph.Rel(graph.RelID(r.ID))
			if gr == nil {
				return value.NullValue, nil
			}
			return value.String(gr.Type), nil
		})),
		"startnode": arity("startNode", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			r, ok := args[0].(value.Rel)
			if !ok {
				return nil, fmt.Errorf("startNode() expects a relationship")
			}
			gr := ev.Graph.Rel(graph.RelID(r.ID))
			if gr == nil {
				return value.NullValue, nil
			}
			return value.Node{ID: int64(gr.Src)}, nil
		})),
		"endnode": arity("endNode", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			r, ok := args[0].(value.Rel)
			if !ok {
				return nil, fmt.Errorf("endNode() expects a relationship")
			}
			gr := ev.Graph.Rel(graph.RelID(r.ID))
			if gr == nil {
				return value.NullValue, nil
			}
			return value.Node{ID: int64(gr.Tgt)}, nil
		})),
		"nodes": arity("nodes", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			p, ok := args[0].(value.Path)
			if !ok {
				return nil, fmt.Errorf("nodes() expects a path, got %s", args[0].Kind())
			}
			out := make(value.List, len(p.Nodes))
			for i, id := range p.Nodes {
				out[i] = value.Node{ID: id}
			}
			return out, nil
		})),
		"relationships": arity("relationships", 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			p, ok := args[0].(value.Path)
			if !ok {
				return nil, fmt.Errorf("relationships() expects a path, got %s", args[0].Kind())
			}
			out := make(value.List, len(p.Rels))
			for i, id := range p.Rels {
				out[i] = value.Rel{ID: id}
			}
			return out, nil
		})),

		"toupper": stringFunc("toUpper", strings.ToUpper),
		"tolower": stringFunc("toLower", strings.ToLower),
		"trim":    stringFunc("trim", strings.TrimSpace),
		"ltrim":   stringFunc("lTrim", func(s string) string { return strings.TrimLeft(s, " \t\r\n") }),
		"rtrim":   stringFunc("rTrim", func(s string) string { return strings.TrimRight(s, " \t\r\n") }),
		"replace": arity("replace", 3, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("replace", args[0])
			if err != nil {
				return nil, err
			}
			if value.IsNull(args[1]) || value.IsNull(args[2]) {
				return value.NullValue, nil
			}
			from, err := strArg("replace", args[1])
			if err != nil {
				return nil, err
			}
			to, err := strArg("replace", args[2])
			if err != nil {
				return nil, err
			}
			return value.String(strings.ReplaceAll(s, from, to)), nil
		})),
		"split": arity("split", 2, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("split", args[0])
			if err != nil {
				return nil, err
			}
			if value.IsNull(args[1]) {
				return value.NullValue, nil
			}
			sep, err := strArg("split", args[1])
			if err != nil {
				return nil, err
			}
			parts := strings.Split(s, sep)
			out := make(value.List, len(parts))
			for i, p := range parts {
				out[i] = value.String(p)
			}
			return out, nil
		})),
		"left": arity("left", 2, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("left", args[0])
			if err != nil {
				return nil, err
			}
			n, ok := value.AsInt(args[1])
			if !ok || n < 0 {
				return nil, fmt.Errorf("left() expects a non-negative integer")
			}
			rs := []rune(s)
			if n > int64(len(rs)) {
				n = int64(len(rs))
			}
			return value.String(rs[:n]), nil
		})),
		"right": arity("right", 2, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
			s, err := strArg("right", args[0])
			if err != nil {
				return nil, err
			}
			n, ok := value.AsInt(args[1])
			if !ok || n < 0 {
				return nil, fmt.Errorf("right() expects a non-negative integer")
			}
			rs := []rune(s)
			if n > int64(len(rs)) {
				n = int64(len(rs))
			}
			return value.String(rs[int64(len(rs))-n:]), nil
		})),
		"substring": func(ev *Evaluator, args []value.Value) (value.Value, error) {
			if len(args) != 2 && len(args) != 3 {
				return nil, fmt.Errorf("substring() expects 2 or 3 arguments")
			}
			if value.IsNull(args[0]) {
				return value.NullValue, nil
			}
			s, err := strArg("substring", args[0])
			if err != nil {
				return nil, err
			}
			start, ok := value.AsInt(args[1])
			if !ok || start < 0 {
				return nil, fmt.Errorf("substring() start must be a non-negative integer")
			}
			rs := []rune(s)
			if start > int64(len(rs)) {
				start = int64(len(rs))
			}
			end := int64(len(rs))
			if len(args) == 3 {
				n, ok := value.AsInt(args[2])
				if !ok || n < 0 {
					return nil, fmt.Errorf("substring() length must be a non-negative integer")
				}
				if start+n < end {
					end = start + n
				}
			}
			return value.String(rs[start:end]), nil
		},
	}
}

func toIntegerFunc(ev *Evaluator, args []value.Value) (value.Value, error) {
	if value.IsNull(args[0]) {
		return value.NullValue, nil
	}
	switch x := args[0].(type) {
	case value.Int:
		return x, nil
	case value.Float:
		return value.Int(int64(x)), nil
	case value.String:
		s := strings.TrimSpace(string(x))
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return value.Int(n), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return value.Int(int64(f)), nil
		}
		return value.NullValue, nil
	}
	return nil, fmt.Errorf("toInteger() expects a number or string")
}

func stringFunc(name string, f func(string) string) scalarFunc {
	return arity(name, 1, nullIn(func(ev *Evaluator, args []value.Value) (value.Value, error) {
		s, err := strArg(name, args[0])
		if err != nil {
			return nil, err
		}
		return value.String(f(s)), nil
	}))
}

// entityProps returns the property map of a node, relationship or map value.
func (ev *Evaluator) entityProps(v value.Value, fname string) (value.Map, error) {
	switch x := v.(type) {
	case value.Node:
		n := ev.Graph.Node(graph.NodeID(x.ID))
		if n == nil {
			return value.Map{}, nil
		}
		return n.PropMap(), nil
	case value.Rel:
		r := ev.Graph.Rel(graph.RelID(x.ID))
		if r == nil {
			return value.Map{}, nil
		}
		return r.PropMap(), nil
	case value.Map:
		return x, nil
	default:
		return nil, fmt.Errorf("%s() expects a node, relationship or map, got %s", fname, v.Kind())
	}
}

// Functions returns the sorted list of available scalar function names
// (used by the REPL for diagnostics).
func Functions() []string {
	out := make([]string, 0, len(scalarFuncs)+1)
	for name := range scalarFuncs {
		out = append(out, name)
	}
	out = append(out, "exists")
	sort.Strings(out)
	return out
}
