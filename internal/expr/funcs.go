package expr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/value"
)

// evalFunc dispatches non-aggregate function calls through the
// registry: resolve the name (case-insensitively), validate the arity
// before evaluating any argument so every function reports the uniform
// registry message, then evaluate arguments left to right and apply.
func (ev *Evaluator) evalFunc(f *ast.FuncCall, sc scope) (value.Value, error) {
	def := LookupFunc(f.Name)
	if def == nil {
		if ast.AggregateFuncs[f.Name] {
			return nil, fmt.Errorf("aggregate %s() used outside an aggregating projection", f.Name)
		}
		return nil, fmt.Errorf("unknown function %s()", f.Name)
	}
	if err := def.CheckArity(len(f.Args)); err != nil {
		return nil, err
	}
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ev.eval(a, sc)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return def.Fn(ev, args)
}

type scalarFunc func(ev *Evaluator, args []value.Value) (value.Value, error)

// nullIn wraps a function to propagate null: any null argument yields
// a null result without invoking f. Functions that must observe nulls
// (exists, coalesce) are registered unwrapped.
func nullIn(f scalarFunc) scalarFunc {
	return func(ev *Evaluator, args []value.Value) (value.Value, error) {
		for _, a := range args {
			if value.IsNull(a) {
				return value.NullValue, nil
			}
		}
		return f(ev, args)
	}
}

func numArg(name string, v value.Value) (float64, error) {
	f, ok := value.AsFloat(v)
	if !ok {
		return 0, fmt.Errorf("%s() expects a number, got %s", name, v.Kind())
	}
	return f, nil
}

func strArg(name string, v value.Value) (string, error) {
	s, ok := value.AsString(v)
	if !ok {
		return "", fmt.Errorf("%s() expects a string, got %s", name, v.Kind())
	}
	return s, nil
}

func parseFloatValue(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

func graphNodeID(n value.Node) graph.NodeID { return graph.NodeID(n.ID) }
func graphRelID(r value.Rel) graph.RelID    { return graph.RelID(r.ID) }

func toIntegerFunc(ev *Evaluator, args []value.Value) (value.Value, error) {
	if value.IsNull(args[0]) {
		return value.NullValue, nil
	}
	switch x := args[0].(type) {
	case value.Int:
		return x, nil
	case value.Float:
		return value.Int(int64(x)), nil
	case value.String:
		s := strings.TrimSpace(string(x))
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return value.Int(n), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return value.Int(int64(f)), nil
		}
		return value.NullValue, nil
	}
	return nil, fmt.Errorf("toInteger() expects a number or string")
}

// entityProps returns the property map of a node, relationship or map value.
func (ev *Evaluator) entityProps(v value.Value, fname string) (value.Map, error) {
	switch x := v.(type) {
	case value.Node:
		n := ev.Graph.Node(graph.NodeID(x.ID))
		if n == nil {
			return value.Map{}, nil
		}
		return n.PropMap(), nil
	case value.Rel:
		r := ev.Graph.Rel(graph.RelID(x.ID))
		if r == nil {
			return value.Map{}, nil
		}
		return r.PropMap(), nil
	case value.Map:
		return x, nil
	default:
		return nil, fmt.Errorf("%s() expects a node, relationship or map, got %s", fname, v.Kind())
	}
}
