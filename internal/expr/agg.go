package expr

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Aggregator accumulates values for one aggregate function within one
// group of an aggregating projection. Following Cypher semantics, null
// inputs are skipped by all aggregators except count(*).
type Aggregator interface {
	// Add feeds one input value (already the evaluated argument).
	Add(v value.Value) error
	// Result finalizes the aggregate.
	Result() value.Value
	// Retains estimates the additional bytes this aggregator would hold
	// on to if v were Added now. Fixed-state aggregators (count, sum,
	// avg, stDev, min/max, which keep at most one value) report 0;
	// collect and DISTINCT report the growth of their buffers. The
	// executor's memory accounting calls this before Add only when a
	// memory budget is configured.
	Retains(v value.Value) int64
}

// NewAggregator returns an aggregator for the named function.
// Supported: count, sum, avg, min, max, collect, stDev, stDevP.
// star selects count(*), which counts rows including nulls.
func NewAggregator(name string, distinct, star bool) (Aggregator, error) {
	var inner Aggregator
	switch name {
	case "count":
		inner = &countAgg{star: star}
	case "sum":
		inner = &sumAgg{}
	case "avg":
		inner = &avgAgg{}
	case "min":
		inner = &minMaxAgg{min: true}
	case "max":
		inner = &minMaxAgg{}
	case "collect":
		inner = &collectAgg{}
	case "stdev":
		inner = &stdevAgg{sample: true}
	case "stdevp":
		inner = &stdevAgg{}
	default:
		return nil, fmt.Errorf("unknown aggregation function %s()", name)
	}
	if distinct {
		return &distinctAgg{seen: make(map[string]bool), inner: inner}, nil
	}
	return inner, nil
}

type distinctAgg struct {
	seen  map[string]bool
	inner Aggregator
}

func (d *distinctAgg) Add(v value.Value) error {
	k := value.Key(v)
	if d.seen[k] {
		return nil
	}
	d.seen[k] = true
	return d.inner.Add(v)
}

func (d *distinctAgg) Result() value.Value { return d.inner.Result() }

func (d *distinctAgg) Retains(v value.Value) int64 {
	k := value.Key(v)
	if d.seen[k] {
		return 0
	}
	return 48 + int64(len(k)) + d.inner.Retains(v)
}

type countAgg struct {
	star bool
	n    int64
}

func (c *countAgg) Add(v value.Value) error {
	if c.star || !value.IsNull(v) {
		c.n++
	}
	return nil
}

func (c *countAgg) Result() value.Value { return value.Int(c.n) }

func (c *countAgg) Retains(value.Value) int64 { return 0 }

type sumAgg struct {
	intSum   int64
	floatSum float64
	sawFloat bool
	sawAny   bool
}

func (s *sumAgg) Add(v value.Value) error {
	switch x := v.(type) {
	case value.Null:
		return nil
	case value.Int:
		s.intSum += int64(x)
		s.sawAny = true
	case value.Float:
		s.floatSum += float64(x)
		s.sawFloat = true
		s.sawAny = true
	default:
		return fmt.Errorf("sum() expects numbers, got %s", v.Kind())
	}
	return nil
}

func (s *sumAgg) Result() value.Value {
	if s.sawFloat {
		return value.Float(s.floatSum + float64(s.intSum))
	}
	return value.Int(s.intSum)
}

func (s *sumAgg) Retains(value.Value) int64 { return 0 }

type avgAgg struct {
	sum sumAgg
	n   int64
}

func (a *avgAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	if err := a.sum.Add(v); err != nil {
		return fmt.Errorf("avg() expects numbers, got %s", v.Kind())
	}
	a.n++
	return nil
}

func (a *avgAgg) Result() value.Value {
	if a.n == 0 {
		return value.NullValue
	}
	total, _ := value.AsFloat(a.sum.Result())
	return value.Float(total / float64(a.n))
}

func (a *avgAgg) Retains(value.Value) int64 { return 0 }

type minMaxAgg struct {
	min  bool
	best value.Value
}

func (m *minMaxAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	if m.best == nil {
		m.best = v
		return nil
	}
	c := value.CompareOrder(v, m.best)
	if (m.min && c < 0) || (!m.min && c > 0) {
		m.best = v
	}
	return nil
}

func (m *minMaxAgg) Result() value.Value {
	if m.best == nil {
		return value.NullValue
	}
	return m.best
}

// Retains reports 0: min/max hold at most one value at a time.
func (m *minMaxAgg) Retains(value.Value) int64 { return 0 }

type collectAgg struct {
	vals value.List
}

func (c *collectAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	c.vals = append(c.vals, v)
	return nil
}

func (c *collectAgg) Result() value.Value {
	if c.vals == nil {
		return value.List{}
	}
	return c.vals
}

func (c *collectAgg) Retains(v value.Value) int64 {
	if value.IsNull(v) {
		return 0
	}
	return value.ApproxSize(v)
}

// stdevAgg implements Welford's online algorithm.
type stdevAgg struct {
	sample bool
	n      int64
	mean   float64
	m2     float64
}

func (s *stdevAgg) Add(v value.Value) error {
	if value.IsNull(v) {
		return nil
	}
	x, ok := value.AsFloat(v)
	if !ok {
		return fmt.Errorf("stDev() expects numbers, got %s", v.Kind())
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	return nil
}

func (s *stdevAgg) Result() value.Value {
	if s.n == 0 {
		return value.Float(0)
	}
	div := float64(s.n)
	if s.sample {
		if s.n < 2 {
			return value.Float(0)
		}
		div = float64(s.n - 1)
	}
	return value.Float(math.Sqrt(s.m2 / div))
}

func (s *stdevAgg) Retains(value.Value) int64 { return 0 }
