// Package cypherclient is a client for the cypherd wire protocol: a
// deliberately independent second implementation of the
// length-prefixed JSON framing and tagged value codec (the first lives
// in the server), so protocol tests exercise two implementations
// against each other rather than one implementation against itself.
//
// A Conn wraps one TCP connection / server session. It is NOT safe for
// concurrent use; open one Conn per goroutine (mirroring the one
// session per connection model of the server).
//
//	c, err := cypherclient.Dial("127.0.0.1:7777")
//	res, err := c.Exec(`MATCH (n:User) WHERE n.id = $id RETURN n.name`,
//	    map[string]any{"id": 42})
//	for _, row := range res.Rows { ... }
package cypherclient

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"time"

	"repro/internal/value"
)

// Value is a Cypher runtime value as returned in result rows.
type Value = value.Value

// maxFrame bounds reply frames the client will accept.
const maxFrame = 64 << 20

// pullBatch is how many rows one PULL requests.
const pullBatch = 4096

// ServerError is a failure frame from the server, carrying its
// machine-readable code.
type ServerError struct {
	// Code is the server's failure code (e.g. "SyntaxError",
	// "ServerBusy", "StatementTimeout").
	Code string
	// Message is the human-readable description.
	Message string
}

// Error implements error.
func (e *ServerError) Error() string { return e.Code + ": " + e.Message }

// UpdateStats counts the effects of a statement or transaction.
type UpdateStats struct {
	// NodesCreated counts nodes created.
	NodesCreated int
	// NodesDeleted counts nodes deleted.
	NodesDeleted int
	// RelsCreated counts relationships created.
	RelsCreated int
	// RelsDeleted counts relationships deleted.
	RelsDeleted int
	// PropsSet counts properties set or removed.
	PropsSet int
	// LabelsAdded counts labels added.
	LabelsAdded int
	// LabelsRemoved counts labels removed.
	LabelsRemoved int
}

// Result is the outcome of an executed statement.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows are the result records in column order.
	Rows [][]Value
	// Stats are the statement's update counters.
	Stats UpdateStats
}

// Conn is one client connection to a cypherd server.
type Conn struct {
	nc      net.Conn
	r       *bufio.Reader
	server  string
	dialect string
}

// Dial connects to a cypherd server at addr (host:port) and performs
// the protocol handshake.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, r: bufio.NewReader(nc)}
	reply, err := c.roundTrip(map[string]any{"type": "hello"})
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.server, _ = reply["server"].(string)
	c.dialect, _ = reply["dialect"].(string)
	return c, nil
}

// ServerInfo reports the server identification and dialect from the
// handshake.
func (c *Conn) ServerInfo() (server, dialect string) { return c.server, c.dialect }

// Exec runs a statement with parameters (native Go values or Values)
// and fetches the full result. Transaction-control statement texts
// (BEGIN/COMMIT/ROLLBACK) are accepted and return an empty result.
func (c *Conn) Exec(query string, params map[string]any) (*Result, error) {
	return c.run(query, params, "")
}

// Explain returns the statement's rendered operator plan without
// executing it.
func (c *Conn) Explain(query string) (string, error) {
	msg := map[string]any{"type": "run", "query": query, "mode": "explain"}
	reply, err := c.roundTrip(msg)
	if err != nil {
		return "", err
	}
	plan, _ := reply["plan"].(string)
	return plan, nil
}

// Profile executes the statement and returns its result together with
// the counter-annotated operator plan.
func (c *Conn) Profile(query string, params map[string]any) (*Result, string, error) {
	res, plan, err := c.runFull(query, params, "profile")
	return res, plan, err
}

func (c *Conn) run(query string, params map[string]any, mode string) (*Result, error) {
	res, _, err := c.runFull(query, params, mode)
	return res, err
}

func (c *Conn) runFull(query string, params map[string]any, mode string) (*Result, string, error) {
	msg := map[string]any{"type": "run", "query": query}
	if mode != "" {
		msg["mode"] = mode
	}
	if len(params) > 0 {
		wp := make(map[string]any, len(params))
		for k, v := range params {
			cv, err := value.FromGo(v)
			if err != nil {
				return nil, "", fmt.Errorf("parameter $%s: %w", k, err)
			}
			ev, err := encodeValue(cv)
			if err != nil {
				return nil, "", fmt.Errorf("parameter $%s: %w", k, err)
			}
			wp[k] = ev
		}
		msg["params"] = wp
	}
	reply, err := c.roundTrip(msg)
	if err != nil {
		return nil, "", err
	}
	plan, _ := reply["plan"].(string)
	res := &Result{Stats: decodeStats(reply["stats"])}
	cols, hasCols := reply["columns"].([]any)
	if !hasCols {
		// Transaction control (or explain): no result to pull.
		return res, plan, nil
	}
	for _, col := range cols {
		s, ok := col.(string)
		if !ok {
			return nil, "", errors.New("cypherclient: malformed columns in reply")
		}
		res.Columns = append(res.Columns, s)
	}
	for {
		reply, err := c.roundTrip(map[string]any{"type": "pull", "n": pullBatch})
		if err != nil {
			return nil, "", err
		}
		rows, _ := reply["rows"].([]any)
		for _, r := range rows {
			raw, ok := r.([]any)
			if !ok {
				return nil, "", errors.New("cypherclient: malformed row in reply")
			}
			row := make([]Value, len(raw))
			for j, rv := range raw {
				v, err := decodeValue(rv)
				if err != nil {
					return nil, "", err
				}
				row[j] = v
			}
			res.Rows = append(res.Rows, row)
		}
		if more, _ := reply["more"].(bool); !more {
			break
		}
	}
	return res, plan, nil
}

// Begin opens an explicit transaction on the server session.
func (c *Conn) Begin() error {
	_, err := c.roundTrip(map[string]any{"type": "begin"})
	return err
}

// Commit publishes the open transaction and returns its accumulated
// update statistics.
func (c *Conn) Commit() (UpdateStats, error) {
	reply, err := c.roundTrip(map[string]any{"type": "commit"})
	if err != nil {
		return UpdateStats{}, err
	}
	return decodeStats(reply["stats"]), nil
}

// Rollback discards the open transaction.
func (c *Conn) Rollback() error {
	_, err := c.roundTrip(map[string]any{"type": "rollback"})
	return err
}

// Reset returns the server session to a clean state: buffered rows are
// discarded and any open transaction rolls back.
func (c *Conn) Reset() error {
	_, err := c.roundTrip(map[string]any{"type": "reset"})
	return err
}

// Close sends GOODBYE and closes the connection.
func (c *Conn) Close() error {
	c.writeFrame(map[string]any{"type": "goodbye"})
	return c.nc.Close()
}

// roundTrip sends one message and reads one reply, converting failure
// frames to *ServerError.
func (c *Conn) roundTrip(msg map[string]any) (map[string]any, error) {
	if err := c.writeFrame(msg); err != nil {
		return nil, err
	}
	reply, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch reply["type"] {
	case "success":
		return reply, nil
	case "failure":
		code, _ := reply["code"].(string)
		text, _ := reply["message"].(string)
		return nil, &ServerError{Code: code, Message: text}
	default:
		return nil, fmt.Errorf("cypherclient: unexpected reply type %v", reply["type"])
	}
}

func (c *Conn) writeFrame(msg map[string]any) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return err
	}
	_, err = c.nc.Write(body)
	return err
}

func (c *Conn) readFrame() (map[string]any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("cypherclient: oversized reply frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return nil, err
	}
	// UseNumber keeps 64-bit integers exact (plain Unmarshal would route
	// every number through float64, corrupting ids above 2^53).
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var msg map[string]any
	if err := dec.Decode(&msg); err != nil {
		return nil, fmt.Errorf("cypherclient: malformed reply: %w", err)
	}
	return msg, nil
}

// encodeValue renders a value in the wire's tagged JSON form (as plain
// maps, since this implementation is deliberately independent of the
// server's structs).
func encodeValue(v Value) (map[string]any, error) {
	switch x := v.(type) {
	case nil, value.Null:
		return map[string]any{"null": true}, nil
	case value.Bool:
		return map[string]any{"bool": bool(x)}, nil
	case value.Int:
		// Marshal as json.Number-safe integer via int64.
		return map[string]any{"int": int64(x)}, nil
	case value.Float:
		f := float64(x)
		switch {
		case math.IsNaN(f):
			return map[string]any{"floatSpecial": "nan"}, nil
		case math.IsInf(f, 1):
			return map[string]any{"floatSpecial": "+inf"}, nil
		case math.IsInf(f, -1):
			return map[string]any{"floatSpecial": "-inf"}, nil
		}
		return map[string]any{"float": f}, nil
	case value.String:
		return map[string]any{"string": string(x)}, nil
	case value.List:
		list := make([]any, len(x))
		for i, el := range x {
			ev, err := encodeValue(el)
			if err != nil {
				return nil, err
			}
			list[i] = ev
		}
		return map[string]any{"isList": true, "list": list}, nil
	case value.Map:
		m := make(map[string]any, len(x))
		for k, el := range x {
			ev, err := encodeValue(el)
			if err != nil {
				return nil, err
			}
			m[k] = ev
		}
		return map[string]any{"isMap": true, "map": m}, nil
	case value.Node:
		return map[string]any{"node": x.ID}, nil
	case value.Rel:
		return map[string]any{"rel": x.ID}, nil
	case value.Path:
		return map[string]any{"path": map[string]any{"nodes": x.Nodes, "rels": x.Rels}}, nil
	default:
		return nil, fmt.Errorf("cypherclient: cannot encode %s value", v.Kind())
	}
}

// decodeValue parses the wire's tagged JSON form into a runtime value.
// Numbers arrive as float64 from encoding/json; integer tags are
// converted back exactly (the wire never carries an int that does not
// fit — see intFromJSON).
func decodeValue(raw any) (Value, error) {
	m, ok := raw.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("cypherclient: malformed wire value %T", raw)
	}
	switch {
	case m["null"] == true:
		return value.NullValue, nil
	case m["bool"] != nil:
		b, ok := m["bool"].(bool)
		if !ok {
			return nil, errors.New("cypherclient: malformed bool value")
		}
		return value.Bool(b), nil
	case m["int"] != nil:
		i, err := intFromJSON(m["int"])
		if err != nil {
			return nil, err
		}
		return value.Int(i), nil
	case m["float"] != nil:
		f, err := floatFromJSON(m["float"])
		if err != nil {
			return nil, err
		}
		return value.Float(f), nil
	case m["floatSpecial"] != nil:
		switch m["floatSpecial"] {
		case "nan":
			return value.Float(math.NaN()), nil
		case "+inf":
			return value.Float(math.Inf(1)), nil
		case "-inf":
			return value.Float(math.Inf(-1)), nil
		}
		return nil, fmt.Errorf("cypherclient: unknown float special %v", m["floatSpecial"])
	case m["string"] != nil:
		s, ok := m["string"].(string)
		if !ok {
			return nil, errors.New("cypherclient: malformed string value")
		}
		return value.String(s), nil
	case m["isList"] == true:
		raw, _ := m["list"].([]any)
		out := make(value.List, len(raw))
		for i, el := range raw {
			v, err := decodeValue(el)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case m["isMap"] == true:
		raw, _ := m["map"].(map[string]any)
		out := make(value.Map, len(raw))
		for k, el := range raw {
			v, err := decodeValue(el)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case m["node"] != nil:
		id, err := intFromJSON(m["node"])
		if err != nil {
			return nil, err
		}
		return value.Node{ID: id}, nil
	case m["rel"] != nil:
		id, err := intFromJSON(m["rel"])
		if err != nil {
			return nil, err
		}
		return value.Rel{ID: id}, nil
	case m["path"] != nil:
		pm, ok := m["path"].(map[string]any)
		if !ok {
			return nil, errors.New("cypherclient: malformed path value")
		}
		nodes, err := intSliceFromJSON(pm["nodes"])
		if err != nil {
			return nil, err
		}
		rels, err := intSliceFromJSON(pm["rels"])
		if err != nil {
			return nil, err
		}
		if len(nodes) != len(rels)+1 {
			return nil, errors.New("cypherclient: malformed path value")
		}
		return value.Path{Nodes: nodes, Rels: rels}, nil
	default:
		return nil, errors.New("cypherclient: wire value has no recognized tag")
	}
}

// intFromJSON recovers an exact int64 from a decoded JSON number
// (json.Number thanks to UseNumber; float64 tolerated for values that
// survive the round-trip).
func intFromJSON(raw any) (int64, error) {
	switch n := raw.(type) {
	case json.Number:
		return n.Int64()
	case float64:
		i := int64(n)
		if float64(i) != n {
			return 0, fmt.Errorf("cypherclient: integer %v not exactly representable", n)
		}
		return i, nil
	default:
		return 0, fmt.Errorf("cypherclient: malformed integer %T", raw)
	}
}

// floatFromJSON recovers a float64 from a decoded JSON number. Go
// marshals floats in their shortest round-trip form, so parsing the
// text back yields the bit-identical float.
func floatFromJSON(raw any) (float64, error) {
	switch n := raw.(type) {
	case json.Number:
		return strconv.ParseFloat(n.String(), 64)
	case float64:
		return n, nil
	default:
		return 0, fmt.Errorf("cypherclient: malformed float %T", raw)
	}
}

func intSliceFromJSON(raw any) ([]int64, error) {
	list, ok := raw.([]any)
	if !ok {
		if raw == nil {
			return []int64{}, nil
		}
		return nil, fmt.Errorf("cypherclient: malformed id list %T", raw)
	}
	out := make([]int64, len(list))
	for i, el := range list {
		v, err := intFromJSON(el)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// decodeStats parses the stats object of a success reply (absent or
// malformed fields read as zero — stats are diagnostics, not data).
func decodeStats(raw any) UpdateStats {
	m, ok := raw.(map[string]any)
	if !ok {
		return UpdateStats{}
	}
	n := func(key string) int {
		i, err := intFromJSON(m[key])
		if err != nil {
			return 0
		}
		return int(i)
	}
	return UpdateStats{
		NodesCreated:  n("nodesCreated"),
		NodesDeleted:  n("nodesDeleted"),
		RelsCreated:   n("relsCreated"),
		RelsDeleted:   n("relsDeleted"),
		PropsSet:      n("propsSet"),
		LabelsAdded:   n("labelsAdded"),
		LabelsRemoved: n("labelsRemoved"),
	}
}
